//! qwm-serve — a persistent timing-query server.
//!
//! Cold CLI timing pays netlist parsing, device characterization and a
//! full propagation on every invocation. The server keeps all three
//! warm: device tables are characterized once per process
//! ([`session::shared_models`]), each session holds a parsed netlist
//! plus an [`StaEngine`] whose committed incremental caches survive
//! across queries, and what-if `edit` + `run` round-trips re-time only
//! the dirty fanout cone.
//!
//! The wire protocol (see [`protocol`]) is a line-delimited text
//! dialect over TCP with length-prefixed bodies — scriptable with
//! nothing fancier than a socket. Heavy commands (`load`, `run`,
//! `sleep`) pass through admission control (at most
//! [`ServerConfig::max_inflight`] in flight; `429 busy` beyond that)
//! and execute on a shared work-stealing [`ThreadPool`]; light commands
//! answer on the connection thread. Per-request deadlines propagate
//! into the fallback ladder's wall-clock budget and surface as `408`.
//! Idle sessions are evicted after [`ServerConfig::session_ttl`], and
//! `shutdown` (or SIGTERM, opt-in) drains gracefully: in-flight work
//! finishes, connections close after their current command, and
//! [`Server::run`] returns.
//!
//! ```no_run
//! use qwm_server::{Server, ServerConfig};
//!
//! let server = Server::bind(ServerConfig::default())?;
//! println!("listening on {}", server.local_addr());
//! server.run()?;
//! # Ok::<(), std::io::Error>(())
//! ```

pub mod client;
pub mod protocol;
pub mod session;

pub use client::{Client, Reply};
pub use protocol::{Command, EvalKind};
pub use session::{shared_models, Session, SessionStore};

use qwm_circuit::parser::parse_netlist;
use qwm_circuit::waveform::TransitionKind;
use qwm_device::ModelSet;
use qwm_exec::ThreadPool;
use qwm_num::NumError;
use qwm_obs::{counter, gauge, histogram, NS_BOUNDS, SIZE_BOUNDS};
use qwm_sta::evaluator::{
    ElmoreEvaluator, FallbackEvaluator, QwmEvaluator, SpiceEvaluator, StageEvaluator,
};
use qwm_sta::report::{golden_corner_report, golden_report};
use qwm_sta::{parse_edit_script, CornerRun, StaEngine};
use qwm_store::{DesignStore, RecoveredSession, SessionSnapshot, StoreError};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

/// How often blocked reads and the accept loop re-check the drain flag.
const POLL_TICK: Duration = Duration::from_millis(25);

/// Longest accepted request line.
const MAX_LINE: usize = 64 * 1024;

/// Server tuning knobs; `Default` gives an ephemeral localhost port.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:0` (port 0 = ephemeral).
    pub addr: String,
    /// Admission-control bound: heavy requests beyond this get `429`.
    /// Also the worker count of the shared dispatch pool.
    pub max_inflight: usize,
    /// Idle-session eviction horizon; `None` disables eviction.
    pub session_ttl: Option<Duration>,
    /// Worker threads *inside* each session's engine. The server's
    /// parallelism axis is concurrent requests, so this defaults to 1;
    /// raise it for few-session / huge-netlist workloads.
    pub engine_threads: usize,
    /// Treat SIGTERM like a `shutdown` command (Unix only; opt-in so
    /// embedding processes keep their own handlers).
    pub handle_sigterm: bool,
    /// Durable design store directory (`--store <dir>`). `None` runs
    /// fully in-memory, exactly as before the store existed. With a
    /// store, every committed run may snapshot (see
    /// [`ServerConfig::snapshot_every`]), every applied edit script is
    /// logged, and [`Server::bind`] restores all stored sessions so a
    /// killed-and-restarted server answers its first query through the
    /// incremental path with bitwise-identical reports.
    pub store_dir: Option<PathBuf>,
    /// Snapshot cadence in edit batches: a committed run snapshots when
    /// at least this many edit scripts were applied since the last
    /// snapshot (a session's first commit always snapshots). 1 —
    /// the default — snapshots every post-edit commit.
    pub snapshot_every: usize,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            max_inflight: 4,
            session_ttl: None,
            engine_threads: 1,
            handle_sigterm: false,
            store_dir: None,
            snapshot_every: 1,
        }
    }
}

#[cfg(unix)]
mod sig {
    use std::sync::atomic::{AtomicBool, Ordering};

    static TERM: AtomicBool = AtomicBool::new(false);

    type SigHandler = extern "C" fn(i32);

    extern "C" {
        fn signal(signum: i32, handler: SigHandler) -> usize;
    }

    extern "C" fn on_term(_sig: i32) {
        TERM.store(true, Ordering::SeqCst);
    }

    /// Installs the SIGTERM (15) flag-setter. Async-signal-safe: the
    /// handler only stores to an atomic.
    pub fn install() {
        unsafe {
            signal(15, on_term);
        }
    }

    pub fn termed() -> bool {
        TERM.load(Ordering::SeqCst)
    }
}

#[cfg(not(unix))]
mod sig {
    pub fn install() {}

    pub fn termed() -> bool {
        false
    }
}

/// State shared by the accept loop, connection threads and pool jobs.
struct Shared {
    cfg: ServerConfig,
    sessions: SessionStore,
    pool: ThreadPool,
    inflight: AtomicUsize,
    draining: AtomicBool,
    /// The durable design store, when configured. Locked only for
    /// appends and status reads — never across an evaluation.
    store: Option<Mutex<DesignStore>>,
}

impl Shared {
    fn draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst) || (self.cfg.handle_sigterm && sig::termed())
    }
}

/// A bound-but-not-yet-running server; call [`Server::run`] to serve.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

/// Remote control for a running server: its address and a drain switch.
#[derive(Clone)]
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
}

impl ServerHandle {
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Begins a graceful drain, exactly like the `shutdown` command.
    /// Returns immediately; [`Server::run`] exits once in-flight work
    /// finishes.
    pub fn shutdown(&self) {
        self.shared.draining.store(true, Ordering::SeqCst);
    }

    /// Live sessions (for tests and monitoring).
    pub fn session_count(&self) -> usize {
        self.shared.sessions.len()
    }
}

impl Server {
    /// Binds the listener and builds the dispatch pool. Serving starts
    /// on [`Server::run`].
    pub fn bind(cfg: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        // Pool workers are long-lived and each query evaluates many
        // arcs: pre-size every worker's thread-local QWM workspace so
        // even a worker's first arc allocates nothing (DESIGN.md §16).
        // 8 covers the deepest stacks in the supported cell set.
        let pool = ThreadPool::new_with_init(cfg.max_inflight.max(1), |_w| {
            qwm_sta::warm_worker(8);
        });
        let sessions = SessionStore::default();
        // Restore-on-boot happens before the listener serves anything,
        // so the first client query already sees warm sessions. A store
        // that fails structural recovery (not a torn tail — those are
        // truncated silently) refuses to bind rather than silently
        // dropping committed work.
        let store = match &cfg.store_dir {
            None => None,
            Some(dir) => {
                let (mut store, recovered) = DesignStore::open(dir).map_err(|e| {
                    io::Error::new(io::ErrorKind::InvalidData, format!("store open: {e}"))
                })?;
                for table in recovered.device_tables {
                    qwm_device::install_table(table);
                }
                let restored = recovered.sessions.len() as u64;
                for rs in recovered.sessions {
                    let (sid, session) = restore_session(&cfg, rs).map_err(|e| {
                        io::Error::new(io::ErrorKind::InvalidData, format!("store restore: {e}"))
                    })?;
                    sessions.insert(sid, session);
                }
                store.note_restored(restored);
                Some(Mutex::new(store))
            }
        };
        Ok(Server {
            listener,
            shared: Arc::new(Shared {
                cfg,
                sessions,
                pool,
                inflight: AtomicUsize::new(0),
                draining: AtomicBool::new(false),
                store,
            }),
        })
    }

    pub fn local_addr(&self) -> SocketAddr {
        self.listener.local_addr().expect("bound listener address")
    }

    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            addr: self.local_addr(),
            shared: Arc::clone(&self.shared),
        }
    }

    /// Binds and serves on a background thread; the returned handle
    /// controls the drain and the join handle yields `run`'s result.
    pub fn spawn(
        cfg: ServerConfig,
    ) -> io::Result<(ServerHandle, std::thread::JoinHandle<io::Result<()>>)> {
        let server = Server::bind(cfg)?;
        let handle = server.handle();
        let join = std::thread::Builder::new()
            .name("qwm-serve".to_string())
            .spawn(move || server.run())
            .expect("spawn server thread");
        Ok((handle, join))
    }

    /// Accept loop; blocks until drained (`shutdown` command,
    /// [`ServerHandle::shutdown`], or SIGTERM when enabled). Returns
    /// after every connection thread has closed and every in-flight
    /// pool job has finished.
    pub fn run(self) -> io::Result<()> {
        if self.shared.cfg.handle_sigterm {
            sig::install();
        }
        let janitor = self.shared.cfg.session_ttl.map(|ttl| {
            let shared = Arc::clone(&self.shared);
            std::thread::Builder::new()
                .name("qwm-serve-janitor".to_string())
                .spawn(move || janitor_loop(&shared, ttl))
                .expect("spawn janitor thread")
        });
        let mut conns: Vec<std::thread::JoinHandle<()>> = Vec::new();
        while !self.shared.draining() {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    counter!("server.conn.accepted").incr();
                    let shared = Arc::clone(&self.shared);
                    conns.push(
                        std::thread::Builder::new()
                            .name("qwm-serve-conn".to_string())
                            .spawn(move || handle_conn(&shared, stream))
                            .expect("spawn connection thread"),
                    );
                    conns.retain(|h| !h.is_finished());
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(POLL_TICK);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        // Graceful drain: connections notice the flag at their next
        // read poll and close after the command they are serving;
        // pool jobs already queued run to completion. Job panics were
        // already surfaced per-request as 500s, so `wait` errors are
        // not re-raised here.
        for h in conns {
            let _ = h.join();
        }
        let _ = self.shared.pool.wait();
        if let Some(j) = janitor {
            let _ = j.join();
        }
        Ok(())
    }
}

fn janitor_loop(shared: &Shared, ttl: Duration) {
    let tick = (ttl / 4).clamp(Duration::from_millis(10), Duration::from_millis(250));
    while !shared.draining() {
        std::thread::sleep(tick);
        let evicted = shared.sessions.evict_idle(ttl);
        if evicted > 0 {
            counter!("server.session.evicted").add(evicted as u64);
        }
    }
}

/// Buffered connection reader that survives read timeouts (used as the
/// drain poll) without losing partially received bytes — `BufReader`
/// cannot promise that across `ErrorKind::TimedOut`.
struct Wire {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl Wire {
    fn fill(&mut self, shared: &Shared) -> io::Result<Option<()>> {
        let mut tmp = [0u8; 4096];
        loop {
            match self.stream.read(&mut tmp) {
                Ok(0) => return Ok(None),
                Ok(n) => {
                    self.buf.extend_from_slice(&tmp[..n]);
                    return Ok(Some(()));
                }
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
                {
                    if shared.draining() {
                        return Ok(None);
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }

    /// Next request line (without the terminator), `None` on client
    /// EOF or server drain.
    fn read_line(&mut self, shared: &Shared) -> io::Result<Option<String>> {
        loop {
            if let Some(pos) = self.buf.iter().position(|&b| b == b'\n') {
                let line: Vec<u8> = self.buf.drain(..=pos).collect();
                let text = String::from_utf8_lossy(&line);
                return Ok(Some(text.trim_end_matches(['\n', '\r']).to_string()));
            }
            if self.buf.len() > MAX_LINE {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "request line too long",
                ));
            }
            if self.fill(shared)?.is_none() {
                return Ok(None);
            }
        }
    }

    /// Exactly `n` payload bytes, `None` on EOF/drain mid-body.
    fn read_exact_n(&mut self, n: usize, shared: &Shared) -> io::Result<Option<Vec<u8>>> {
        while self.buf.len() < n {
            if self.fill(shared)?.is_none() {
                return Ok(None);
            }
        }
        Ok(Some(self.buf.drain(..n).collect()))
    }

    fn send_status(&mut self, code: u16, msg: &str) -> io::Result<()> {
        if code >= 400 {
            counter!("server.request.errors").incr();
        }
        self.stream.write_all(format!("{code} {msg}\n").as_bytes())
    }

    fn send_payload(&mut self, code: u16, msg: &str, payload: &str) -> io::Result<()> {
        let head = format!("{code} {msg} len={}\n", payload.len());
        self.stream.write_all(head.as_bytes())?;
        self.stream.write_all(payload.as_bytes())
    }
}

fn handle_conn(shared: &Arc<Shared>, stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(POLL_TICK));
    let _ = stream.set_nodelay(true);
    let mut wire = Wire {
        stream,
        buf: Vec::new(),
    };
    loop {
        let line = match wire.read_line(shared) {
            Ok(Some(l)) => l,
            Ok(None) => return,
            Err(e) => {
                // An oversized request line is a client bug, not a
                // transport failure: answer with a structured 400
                // before closing so the sender sees a diagnosis
                // instead of a bare hangup. The connection still
                // closes — there is no way to resynchronize inside an
                // unbounded garbage line.
                if e.kind() == io::ErrorKind::InvalidData {
                    let _ = wire.send_status(400, "request line too long");
                }
                return;
            }
        };
        if line.trim().is_empty() {
            continue;
        }
        let t0 = Instant::now();
        counter!("server.request.received").incr();
        let cmd = match protocol::parse_command(&line) {
            Ok(c) => c,
            Err(e) => {
                if wire.send_status(400, &protocol::one_line(&e)).is_err() {
                    return;
                }
                continue;
            }
        };
        // Length-prefixed bodies are read eagerly so a rejected command
        // never leaves raw deck bytes in the stream to be misparsed as
        // commands.
        let payload = match cmd {
            Command::Load { nbytes, .. } | Command::Edit { nbytes, .. } => {
                match wire.read_exact_n(nbytes, shared) {
                    Ok(Some(bytes)) => match String::from_utf8(bytes) {
                        Ok(text) => Some(text),
                        Err(_) => {
                            if wire.send_status(400, "payload is not UTF-8").is_err() {
                                return;
                            }
                            continue;
                        }
                    },
                    Ok(None) | Err(_) => return,
                }
            }
            _ => None,
        };
        let label = cmd.label();
        let flow = dispatch(shared, &mut wire, cmd, payload);
        record_request_ns(label, t0.elapsed().as_nanos() as u64);
        match flow {
            Ok(Flow::Continue) => {}
            Ok(Flow::Quit) | Err(_) => return,
        }
    }
}

/// The `histogram!` macro caches one handle per call site, so each
/// per-command series needs its own site with a literal name.
fn record_request_ns(label: &'static str, ns: u64) {
    match label {
        "load" => histogram!("server.request.latency_ns.load", NS_BOUNDS).record(ns),
        "run" => histogram!("server.request.latency_ns.run", NS_BOUNDS).record(ns),
        "edit" => histogram!("server.request.latency_ns.edit", NS_BOUNDS).record(ns),
        "report" => histogram!("server.request.latency_ns.report", NS_BOUNDS).record(ns),
        "sleep" => histogram!("server.request.latency_ns.sleep", NS_BOUNDS).record(ns),
        _ => histogram!("server.request.latency_ns.other", NS_BOUNDS).record(ns),
    }
}

enum Flow {
    Continue,
    Quit,
}

/// `(head-line-after-code, optional payload)` on success, `(status,
/// message)` otherwise.
type Outcome = Result<(String, Option<String>), (u16, String)>;

fn num_outcome(context: &str, e: &NumError) -> (u16, String) {
    let code = match e {
        NumError::Timeout { .. } => 408,
        NumError::InvalidInput { .. } => 400,
        _ => 500,
    };
    (code, format!("{context}: {e}"))
}

/// Decrements the in-flight gauge when the admitted job finishes, even
/// if it panics.
struct AdmitGuard {
    shared: Arc<Shared>,
}

impl Drop for AdmitGuard {
    fn drop(&mut self) {
        self.shared.inflight.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Admission control: increments in-flight if below the bound,
/// otherwise replies `429` and returns `None`.
fn admit(shared: &Arc<Shared>, wire: &mut Wire) -> io::Result<Option<AdmitGuard>> {
    let max = shared.cfg.max_inflight;
    match shared
        .inflight
        .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| {
            (n < max).then_some(n + 1)
        }) {
        Ok(prev) => {
            histogram!("server.request.inflight", SIZE_BOUNDS).record(prev as u64 + 1);
            Ok(Some(AdmitGuard {
                shared: Arc::clone(shared),
            }))
        }
        Err(cur) => {
            counter!("server.request.rejected").incr();
            wire.send_status(429, &format!("busy inflight={cur} max={max}"))?;
            Ok(None)
        }
    }
}

/// Blocks the connection thread on the pool job's reply. A dropped
/// sender means the job panicked (the pool contains panics); the
/// admission slot was still released by [`AdmitGuard`].
fn finish(wire: &mut Wire, rx: &mpsc::Receiver<Outcome>) -> io::Result<()> {
    match rx.recv() {
        Ok(Ok((head, None))) => wire.send_status(200, &head),
        Ok(Ok((head, Some(payload)))) => wire.send_payload(200, &head, &payload),
        Ok(Err((code, msg))) => wire.send_status(code, &protocol::one_line(&msg)),
        Err(_) => wire.send_status(500, "internal: request worker panicked"),
    }
}

fn dispatch(
    shared: &Arc<Shared>,
    wire: &mut Wire,
    cmd: Command,
    payload: Option<String>,
) -> io::Result<Flow> {
    match cmd {
        Command::Ping => wire
            .send_status(200, "ok qwm-serve")
            .map(|()| Flow::Continue),
        Command::Quit => wire.send_status(200, "ok bye").map(|()| Flow::Quit),
        Command::Shutdown => {
            shared.draining.store(true, Ordering::SeqCst);
            wire.send_status(200, "ok draining").map(|()| Flow::Quit)
        }
        Command::Metrics { prom } => {
            publish_gauges(shared);
            let text = if prom {
                qwm_obs::prom::render_prom()
            } else {
                qwm_obs::render(qwm_obs::ObsMode::Json)
            };
            wire.send_payload(200, "ok", &text).map(|()| Flow::Continue)
        }
        Command::Profile { k } => {
            let text = qwm_obs::trace::profile_top(k);
            wire.send_payload(200, "ok", &text).map(|()| Flow::Continue)
        }
        Command::Trace { sid, action } => {
            let reply = match shared.sessions.get(&sid) {
                None => Err((404, format!("unknown session {sid:?}"))),
                Some(sess) => {
                    let mut s = lock_session(&sess);
                    s.last_used = Instant::now();
                    match action {
                        // The recorder is process-wide; the session flag
                        // picks whose runs capture trees. `off` stops
                        // recording for everyone — honest and simple.
                        protocol::TraceAction::On => {
                            s.trace_on = true;
                            qwm_obs::trace::set_enabled(true);
                            Ok(("ok tracing=on".to_string(), None))
                        }
                        protocol::TraceAction::Off => {
                            s.trace_on = false;
                            qwm_obs::trace::set_enabled(false);
                            Ok(("ok tracing=off".to_string(), None))
                        }
                        protocol::TraceAction::Last { json } => match &s.last_trace {
                            None => Err((404, format!("session {sid:?} has no trace yet"))),
                            Some(t) => {
                                let body = if json {
                                    t.render_json()
                                } else {
                                    t.render_text()
                                };
                                Ok((format!("ok records={}", t.records.len()), Some(body)))
                            }
                        },
                    }
                }
            };
            send_outcome(wire, reply).map(|()| Flow::Continue)
        }
        Command::Report { sid } => {
            let reply = match shared.sessions.get(&sid) {
                None => Err((404, format!("unknown session {sid:?}"))),
                Some(sess) => {
                    let mut s = lock_session(&sess);
                    s.last_used = Instant::now();
                    match &s.last_report {
                        Some(r) => Ok((format!("ok runs={}", s.runs), Some(r.clone()))),
                        None => Err((404, format!("session {sid:?} has no report yet"))),
                    }
                }
            };
            send_outcome(wire, reply).map(|()| Flow::Continue)
        }
        Command::Stats { sid } => {
            let reply = match shared.sessions.get(&sid) {
                None => Err((404, format!("unknown session {sid:?}"))),
                Some(sess) => {
                    let mut s = lock_session(&sess);
                    s.last_used = Instant::now();
                    let st = s.engine.incremental_stats();
                    Ok((
                        format!(
                            "ok runs={} full_run={} dirty={} evaluated={} reused={} \
                             early_stop={} evaluations={}",
                            s.runs,
                            st.full_run,
                            st.dirty_stages,
                            st.evaluated_stages,
                            st.reused_arcs,
                            st.early_stop_nets,
                            st.evaluations
                        ),
                        None,
                    ))
                }
            };
            send_outcome(wire, reply).map(|()| Flow::Continue)
        }
        Command::Budget { sid, retries, wall } => {
            let reply = match shared.sessions.get(&sid) {
                None => Err((404, format!("unknown session {sid:?}"))),
                Some(sess) => {
                    let mut s = lock_session(&sess);
                    s.last_used = Instant::now();
                    if let Some(r) = retries {
                        s.budget.qwm_retries = r;
                    }
                    if let Some(w) = wall {
                        s.budget.stage_wall = w;
                    }
                    let wall_ms = match s.budget.stage_wall {
                        Some(d) => format!("{}", d.as_millis()),
                        None => "off".to_string(),
                    };
                    Ok((
                        format!("ok retries={} wall_ms={}", s.budget.qwm_retries, wall_ms),
                        None,
                    ))
                }
            };
            send_outcome(wire, reply).map(|()| Flow::Continue)
        }
        Command::Close { sid } => {
            let existed = shared.sessions.remove(&sid);
            if existed {
                append_close(shared, &sid);
            }
            wire.send_status(200, &format!("ok existed={existed}"))
                .map(|()| Flow::Continue)
        }
        Command::Edit { sid, .. } => {
            let text = payload.expect("edit carries a body");
            let reply = match shared.sessions.get(&sid) {
                None => Err((404, format!("unknown session {sid:?}"))),
                Some(sess) => {
                    let mut s = lock_session(&sess);
                    s.last_used = Instant::now();
                    match parse_edit_script(&text, s.engine.netlist()) {
                        Err(e) => Err((400, e)),
                        Ok(edits) => match s.engine.apply_edits(&edits) {
                            Ok(()) => {
                                // Durable only once a snapshot anchors the
                                // replay; pre-snapshot edits are covered by
                                // the full netlist the first commit writes.
                                if s.has_snapshot {
                                    if let Some(store) = &shared.store {
                                        if let Err(e) = lock_store(store).append_edits(&sid, &text)
                                        {
                                            store_failure("append_edits", &e);
                                        }
                                    }
                                }
                                s.edits_since_snapshot += 1;
                                Ok((format!("ok edits={}", edits.len()), None))
                            }
                            Err(e) => Err(num_outcome("apply_edits", &e)),
                        },
                    }
                }
            };
            send_outcome(wire, reply).map(|()| Flow::Continue)
        }
        Command::Store => {
            let reply = match &shared.store {
                None => Err((
                    404,
                    "no store configured (serve with --store <dir>)".to_string(),
                )),
                Some(store) => {
                    let st = lock_store(store).status();
                    Ok((
                        format!(
                            "ok dir={} bytes={} records={} snapshots={} restores={} \
                             truncated_tails={} device_tables={} characterizations={}",
                            st.dir.display(),
                            st.bytes,
                            st.records,
                            st.snapshots,
                            st.restores,
                            st.truncated_tails,
                            st.device_tables,
                            qwm_device::TableModel::characterization_count(),
                        ),
                        None,
                    ))
                }
            };
            send_outcome(wire, reply).map(|()| Flow::Continue)
        }
        Command::Load { sid, rise, .. } => {
            if shared.draining() {
                return wire.send_status(503, "draining").map(|()| Flow::Continue);
            }
            let Some(guard) = admit(shared, wire)? else {
                return Ok(Flow::Continue);
            };
            let deck = payload.expect("load carries a body");
            let (tx, rx) = mpsc::channel();
            let shared_jobs = Arc::clone(shared);
            let direction = if rise {
                TransitionKind::Rise
            } else {
                TransitionKind::Fall
            };
            shared.pool.execute(move || {
                let out = load_session(&shared_jobs, &sid, &deck, direction);
                // Release the admission slot before replying: the
                // client's next request must not race its own slot.
                drop(guard);
                let _ = tx.send(out);
            });
            finish(wire, &rx).map(|()| Flow::Continue)
        }
        Command::Run {
            sid,
            eval,
            slew_ps,
            deadline,
            corners,
        } => {
            if shared.draining() {
                return wire.send_status(503, "draining").map(|()| Flow::Continue);
            }
            let Some(sess) = shared.sessions.get(&sid) else {
                return wire
                    .send_status(404, &format!("unknown session {sid:?}"))
                    .map(|()| Flow::Continue);
            };
            let Some(guard) = admit(shared, wire)? else {
                return Ok(Flow::Continue);
            };
            let (tx, rx) = mpsc::channel();
            let enqueued = Instant::now();
            let shared_jobs = Arc::clone(shared);
            shared.pool.execute(move || {
                let out = run_session(
                    &shared_jobs,
                    &sid,
                    &sess,
                    eval,
                    slew_ps,
                    deadline,
                    &corners,
                    enqueued,
                );
                drop(guard);
                let _ = tx.send(out);
            });
            finish(wire, &rx).map(|()| Flow::Continue)
        }
        Command::Sleep { ms } => {
            if shared.draining() {
                return wire.send_status(503, "draining").map(|()| Flow::Continue);
            }
            let Some(guard) = admit(shared, wire)? else {
                return Ok(Flow::Continue);
            };
            let (tx, rx) = mpsc::channel();
            shared.pool.execute(move || {
                std::thread::sleep(Duration::from_millis(ms));
                drop(guard);
                let _ = tx.send(Ok((format!("ok slept_ms={ms}"), None)));
            });
            finish(wire, &rx).map(|()| Flow::Continue)
        }
    }
}

fn send_outcome(wire: &mut Wire, outcome: Outcome) -> io::Result<()> {
    match outcome {
        Ok((head, None)) => wire.send_status(200, &head),
        Ok((head, Some(payload))) => wire.send_payload(200, &head, &payload),
        Err((code, msg)) => wire.send_status(code, &protocol::one_line(&msg)),
    }
}

/// A panicked query poisons only its own session; later queries on it
/// still see structurally valid engine state (caches are rebuilt by the
/// next full run), and other sessions are untouched.
fn lock_session(sess: &Mutex<Session>) -> std::sync::MutexGuard<'_, Session> {
    sess.lock().unwrap_or_else(|e| e.into_inner())
}

/// Pool job for `load`: parse, build the engine against the shared
/// models, install (or replace) the session.
fn load_session(shared: &Shared, sid: &str, deck: &str, direction: TransitionKind) -> Outcome {
    let models = shared_models().map_err(|e| (500, e))?;
    let netlist = parse_netlist(deck).map_err(|e| (400, e.to_string()))?;
    let mut engine = StaEngine::new(netlist, models, direction)
        .map_err(|e| num_outcome("StaEngine::new", &e))?;
    engine.set_threads(shared.cfg.engine_threads);
    let head = format!(
        "ok devices={} stages={}",
        engine.netlist().devices().len(),
        engine.graph().len()
    );
    // Replacing a session orphans its stored history: tombstone the sid
    // first so a crash between this load and the fresh session's first
    // commit recovers to "no session" rather than the stale design.
    if shared.sessions.get(sid).is_some() {
        append_close(shared, sid);
    }
    shared
        .sessions
        .insert(sid.to_string(), Session::new(engine));
    Ok((head, None))
}

/// Pool job for `run`: incremental re-timing with deadline accounting.
///
/// Deadline semantics: the budget covers queue wait plus evaluation.
/// Expiry in the queue returns `408` without running; for the fallback
/// evaluator the remaining time is pushed into
/// [`FallbackBudget::stage_wall`] so long stages abort mid-run with
/// [`NumError::Timeout`] (also `408`); and a run that completes past
/// its deadline still commits (the report stays retrievable via
/// `report`) but replies `408`.
#[allow(clippy::too_many_arguments)]
fn run_session(
    shared: &Shared,
    sid: &str,
    sess: &Mutex<Session>,
    eval: EvalKind,
    slew_ps: Option<f64>,
    deadline: Option<Duration>,
    corners: &[qwm_device::Corner],
    enqueued: Instant,
) -> Outcome {
    // Queue wait: enqueue on the connection thread to job start here.
    // Always measured (two clock reads per run) so the reply can report
    // the wait/solve split whether or not tracing is on.
    let wait = enqueued.elapsed();
    if let Some(d) = deadline {
        if wait >= d {
            return Err((
                408,
                format!("deadline_ms={} exceeded while queued", d.as_millis()),
            ));
        }
    }
    let mut s = lock_session(sess);
    s.last_used = Instant::now();
    if let Some(ps) = slew_ps {
        s.engine
            .set_input_slew(ps * 1e-12)
            .map_err(|e| num_outcome("set_input_slew", &e))?;
    }
    // One evaluator instance per corner lane (or a single one for the
    // classic run): degrading evaluators pool provenance per instance,
    // and each corner's report must drain only its own.
    let make_evaluator = |s: &Session| -> Box<dyn StageEvaluator> {
        match eval {
            EvalKind::Qwm => Box::new(QwmEvaluator::default()),
            EvalKind::Elmore => Box::new(ElmoreEvaluator),
            EvalKind::Spice => Box::new(SpiceEvaluator::default()),
            EvalKind::Fallback => {
                let mut f = FallbackEvaluator::default();
                f.budget = s.budget.clone();
                if let Some(d) = deadline {
                    let remaining = d.saturating_sub(enqueued.elapsed());
                    f.budget.stage_wall = Some(match f.budget.stage_wall {
                        Some(w) => w.min(remaining),
                        None => remaining,
                    });
                }
                Box::new(f)
            }
        }
    };
    // Corner sweeps resolve their model sets up front (characterized
    // once per process per corner) so a bad corner fails fast as 500
    // before any engine state is touched.
    let corner_models: Vec<&'static ModelSet> = corners
        .iter()
        .map(session::corner_static_models)
        .collect::<Result<_, _>>()
        .map_err(|e| (500, e))?;
    let evaluators: Vec<Box<dyn StageEvaluator>> = (0..corners.len().max(1))
        .map(|_| make_evaluator(&s))
        .collect();
    // Traced runs get a root span; the admission wait is attached as a
    // manual child (its clock started before this scope existed). The
    // root guard must drop before the tree is collected.
    let mut root_id = 0;
    let solve_t0 = Instant::now();
    let result = {
        let root = s
            .trace_on
            .then(|| qwm_obs::trace::TraceGuard::enter("server.run"));
        if let Some(g) = &root {
            root_id = g.id();
            qwm_obs::trace::record_manual("server.wait.admission", root_id, enqueued, wait);
        }
        if corners.is_empty() {
            s.engine.run_incremental(evaluators[0].as_ref()).map(Ok)
        } else {
            let runs: Vec<CornerRun> = corners
                .iter()
                .zip(&corner_models)
                .zip(&evaluators)
                .map(|((c, models), ev)| CornerRun {
                    name: c.interned_name(),
                    models,
                    evaluator: ev.as_ref(),
                })
                .collect();
            s.engine.run_incremental_corners(&runs).map(Err)
        }
    };
    let solve_ns = solve_t0.elapsed().as_nanos() as u64;
    if root_id != 0 {
        // Collected immediately (even on error) so ring wrap-around
        // cannot eat this query's records.
        s.last_trace = Some(qwm_obs::trace::take_tree(root_id));
    }
    let outcome = result.map_err(|e| num_outcome("run", &e))?;
    let stats = s.engine.incremental_stats();
    let (golden, corner_head) = match outcome {
        Ok(report) => (golden_report(&report, s.engine.netlist()), String::new()),
        Err(cr) => {
            let worst_corner = match cr.worst {
                Some((c, _, _)) => cr.corners[c],
                None => "-",
            };
            (
                golden_corner_report(&cr, s.engine.netlist()),
                format!(" corners={} worst_corner={worst_corner}", cr.corners.len()),
            )
        }
    };
    s.last_report = Some(golden.clone());
    s.runs += 1;
    persist_after_commit(shared, sid, &mut s);
    let head = format!(
        "ok runs={} evaluated={} reused={} wait_ns={} solve_ns={}{corner_head}",
        s.runs,
        stats.evaluated_stages,
        stats.reused_arcs,
        wait.as_nanos(),
        solve_ns
    );
    drop(s);
    if let Some(d) = deadline {
        if enqueued.elapsed() > d {
            return Err((
                408,
                format!(
                    "deadline_ms={} exceeded after {} ms; report committed",
                    d.as_millis(),
                    enqueued.elapsed().as_millis()
                ),
            ));
        }
    }
    Ok((head, Some(golden)))
}

/// Locks the store; a poisoned lock still holds a structurally valid
/// store (appends are atomic at the record layer).
fn lock_store(store: &Mutex<DesignStore>) -> std::sync::MutexGuard<'_, DesignStore> {
    store.lock().unwrap_or_else(|e| e.into_inner())
}

/// A store write failed. Durability degrades but the in-memory commit
/// already happened, so the client still gets its 200; the failure is
/// visible in metrics and the event log.
fn store_failure(op: &'static str, e: &StoreError) {
    counter!("store.write_failed").incr();
    qwm_obs::warn("store.write_failed")
        .field("op", op)
        .field("error", format!("{e}"))
        .emit();
}

/// Appends a close tombstone for `sid`, if a store is configured.
fn append_close(shared: &Shared, sid: &str) {
    if let Some(store) = &shared.store {
        if let Err(e) = lock_store(store).append_close(sid) {
            store_failure("append_close", &e);
        }
    }
}

/// Captures a [`SessionSnapshot`] of a live session. Called under the
/// session lock at a commit point, so the engine, books and report are
/// mutually consistent.
fn session_snapshot(sid: &str, s: &Session) -> SessionSnapshot {
    SessionSnapshot {
        sid: sid.to_string(),
        direction: s.engine.direction(),
        input_slew: s.engine.input_slew(),
        runs: s.runs,
        qwm_retries: s.budget.qwm_retries as u64,
        stage_wall_ns: s.budget.stage_wall.map(|d| d.as_nanos() as u64),
        last_report: s.last_report.clone(),
        netlist: s.engine.netlist().clone(),
        committed: s.engine.export_committed(),
        committed_corners: s.engine.export_committed_corners(),
    }
}

/// Snapshot-on-commit: runs with the session lock held, right after a
/// successful run committed its book. A session's first commit always
/// snapshots (that is the moment it becomes durable); later commits
/// snapshot once `snapshot_every` edit batches have accumulated.
/// Device tables are synced first so a restore never needs to
/// re-characterize.
fn persist_after_commit(shared: &Shared, sid: &str, s: &mut Session) {
    let Some(store) = &shared.store else { return };
    if s.has_snapshot && s.edits_since_snapshot < shared.cfg.snapshot_every {
        return;
    }
    let snap = session_snapshot(sid, s);
    let mut store = lock_store(store);
    if let Err(e) = store.sync_tables(&qwm_device::cached_tables()) {
        store_failure("sync_tables", &e);
        return;
    }
    match store.append_snapshot(&snap) {
        Ok(()) => {
            s.has_snapshot = true;
            s.edits_since_snapshot = 0;
            counter!("server.store.snapshot").incr();
        }
        Err(e) => store_failure("append_snapshot", &e),
    }
}

/// Rebuilds one live session from its recovered snapshot + edit tail.
/// The snapshot's committed books are imported verbatim (bitwise) and
/// the edits are replayed to re-mark the dirty cone, so the restored
/// session's first query runs the same incremental path — and produces
/// the same bytes — as a never-restarted server's would.
fn restore_session(cfg: &ServerConfig, rs: RecoveredSession) -> Result<(String, Session), String> {
    let snap = rs.snapshot;
    let models = shared_models()?;
    let mut engine = StaEngine::new(snap.netlist, models, snap.direction)
        .map_err(|e| format!("session {:?}: StaEngine::new: {e}", snap.sid))?;
    engine.set_threads(cfg.engine_threads);
    engine
        .set_input_slew(snap.input_slew)
        .map_err(|e| format!("session {:?}: set_input_slew: {e}", snap.sid))?;
    if let Some(c) = snap.committed {
        engine
            .import_committed(c)
            .map_err(|e| format!("session {:?}: import_committed: {e}", snap.sid))?;
    }
    if let Some(c) = snap.committed_corners {
        engine
            .import_committed_corners(c)
            .map_err(|e| format!("session {:?}: import_committed_corners: {e}", snap.sid))?;
    }
    for script in &rs.edits {
        let edits = parse_edit_script(script, engine.netlist())
            .map_err(|e| format!("session {:?}: replay parse: {e}", snap.sid))?;
        engine
            .apply_edits(&edits)
            .map_err(|e| format!("session {:?}: replay apply: {e}", snap.sid))?;
    }
    let mut session = Session::new(engine);
    session.runs = snap.runs;
    session.last_report = snap.last_report;
    session.budget.qwm_retries = snap.qwm_retries as usize;
    session.budget.stage_wall = snap.stage_wall_ns.map(Duration::from_nanos);
    session.edits_since_snapshot = rs.edits.len();
    session.has_snapshot = true;
    Ok((snap.sid, session))
}

/// Refreshes the process/store gauges served by `metrics`.
fn publish_gauges(shared: &Shared) {
    let rss = rss_bytes();
    gauge!("server.mem.rss_bytes").set(rss);
    let sessions = shared.sessions.len() as u64;
    gauge!("server.sessions.live").set(sessions);
    gauge!("server.mem.bytes_per_session").set(rss / sessions.max(1));
    if let Some(store) = &shared.store {
        let st = lock_store(store).status();
        gauge!("store.bytes").set(st.bytes);
        gauge!("store.records").set(st.records);
        gauge!("store.snapshots").set(st.snapshots);
        gauge!("store.restores").set(st.restores);
        gauge!("store.truncated_tails").set(st.truncated_tails);
        gauge!("store.device_tables").set(st.device_tables);
    }
}

/// Resident set size from `/proc/self/status` (0 where unavailable —
/// the gauge is best-effort monitoring, not accounting).
fn rss_bytes() -> u64 {
    if let Ok(text) = std::fs::read_to_string("/proc/self/status") {
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("VmRSS:") {
                if let Some(kb) = rest
                    .split_whitespace()
                    .next()
                    .and_then(|v| v.parse::<u64>().ok())
                {
                    return kb * 1024;
                }
            }
        }
    }
    0
}
