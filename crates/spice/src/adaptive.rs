//! Adaptive time-step transient analysis.
//!
//! The related work the paper positions against (§II) includes
//! adaptively controlled simulation (ACES, Devgan & Rohrer): instead of
//! a fixed step, the integrator grows the step through quiescent
//! stretches and shrinks it through fast transitions. This module adds
//! that baseline flavor on top of the fixed-step engine using classic
//! step-doubling local-truncation-error control: each accepted interval
//! is integrated once with `h` and once as two `h/2` sub-steps; the
//! difference estimates the LTE and drives acceptance and the next step
//! size.
//!
//! For the QWM comparison this closes the obvious objection "a real
//! simulator would not take 1 ps steps everywhere": it indeed takes far
//! fewer steps (see the `adaptive` rows in `EXPERIMENTS.md`), and QWM
//! still wins by an order of magnitude on the paper's workloads.

use crate::engine::{TransientConfig, TransientResult};
use qwm_circuit::stage::LogicStage;
use qwm_circuit::waveform::Waveform;
use qwm_device::model::ModelSet;
use qwm_num::{NumError, Result};
use std::time::Instant;

/// Controls for [`simulate_adaptive`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveConfig {
    /// Base configuration (tolerances, iteration scheme, `t_stop`; its
    /// `step` seeds the initial step size).
    pub base: TransientConfig,
    /// Smallest allowed step \[s\].
    pub h_min: f64,
    /// Largest allowed step \[s\].
    pub h_max: f64,
    /// Per-step voltage LTE target \[V\].
    pub lte_target: f64,
}

impl AdaptiveConfig {
    /// A sensible default around the paper's horizons: 0.25 ps floor,
    /// 25 ps ceiling, 5 mV per-step error target.
    pub fn new(t_stop: f64) -> Self {
        AdaptiveConfig {
            base: TransientConfig {
                t_stop,
                step: 1e-12,
                ..TransientConfig::default()
            },
            h_min: 0.25e-12,
            h_max: 25e-12,
            lte_target: 5e-3,
        }
    }
}

/// Runs an adaptive-step transient. Returns the same
/// [`TransientResult`] shape as the fixed-step engine (non-uniform
/// sample times).
///
/// # Errors
///
/// Propagates per-interval solver failures. Steps at `h_min` are
/// accepted even above the LTE target (the controller cannot refine
/// further; the half-step result is still used).
pub fn simulate_adaptive(
    stage: &LogicStage,
    models: &ModelSet,
    inputs: &[Waveform],
    initial: &[f64],
    config: &AdaptiveConfig,
) -> Result<TransientResult> {
    if let Some(e) = qwm_fault::check("spice.adaptive") {
        return Err(e);
    }
    if config.h_min.is_nan()
        || config.h_min <= 0.0
        || config.h_max < config.h_min
        || config.lte_target.is_nan()
        || config.lte_target <= 0.0
    {
        return Err(NumError::InvalidInput {
            context: "simulate_adaptive",
            detail: format!(
                "h_min={} h_max={} lte={}",
                config.h_min, config.h_max, config.lte_target
            ),
        });
    }
    let start = Instant::now();
    let _span = qwm_obs::span!("spice.simulate_adaptive");
    let _trace = qwm_obs::trace::TraceGuard::enter("spice.simulate_adaptive");
    let vdd = models.tech().vdd;
    let mut t = 0.0;
    let mut h = config.base.step.clamp(config.h_min, config.h_max);
    let mut node_v: Vec<f64> = initial.to_vec();
    node_v[stage.source().0] = vdd;
    node_v[stage.sink().0] = 0.0;

    let mut times = vec![0.0];
    let mut volts: Vec<Vec<f64>> = node_v.iter().map(|&v| vec![v]).collect();
    let mut stepper = crate::engine::Stepper::new(stage, models, inputs, &config.base)?;

    while t < config.base.t_stop - 1e-18 {
        let h_eff = h.min(config.base.t_stop - t);
        // Full step vs two half steps (step-doubling LTE estimate).
        let mut full = node_v.clone();
        stepper.advance(&mut full, t + h_eff, h_eff)?;
        let mut halves = node_v.clone();
        stepper.advance(&mut halves, t + 0.5 * h_eff, 0.5 * h_eff)?;
        stepper.advance(&mut halves, t + h_eff, 0.5 * h_eff)?;
        let lte = full
            .iter()
            .zip(&halves)
            .fold(0.0_f64, |m, (a, b)| m.max((a - b).abs()));

        if lte <= config.lte_target || h_eff <= config.h_min * 1.0001 {
            // At h_min the step is accepted regardless (the controller
            // cannot do better; the half-step result is still the most
            // accurate available — standard practice).
            // Accept the more accurate half-step result.
            t += h_eff;
            node_v = halves;
            times.push(t);
            for (trace, &v) in volts.iter_mut().zip(&node_v) {
                trace.push(v);
            }
            // Controller: grow on comfortable margin.
            if lte < 0.25 * config.lte_target {
                h = (h * 2.0).min(config.h_max);
            }
            qwm_obs::counter!("spice.adaptive.accepted").incr();
        } else {
            h = (h * 0.5).max(config.h_min);
            qwm_obs::counter!("spice.adaptive.rejected").incr();
        }
    }

    let (iterations, factorizations) = stepper.counters();
    qwm_obs::counter!("spice.adaptive.nr_iterations").add(iterations as u64);
    qwm_obs::counter!("spice.adaptive.factorizations").add(factorizations as u64);
    Ok(TransientResult {
        times,
        voltages: volts,
        iterations,
        factorizations,
        elapsed: start.elapsed(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::initial_uniform;
    use qwm_circuit::cells;
    use qwm_device::{analytic_models, Technology};

    use crate::engine::simulate;

    #[test]
    fn adaptive_matches_fixed_step_delay_with_fewer_steps() {
        let tech = Technology::cmosp35();
        let models = analytic_models(&tech);
        let stage = cells::nmos_stack(&tech, &[1.5e-6; 4], cells::DEFAULT_LOAD).unwrap();
        let inputs: Vec<Waveform> = (0..4).map(|_| Waveform::step(0.0, 0.0, tech.vdd)).collect();
        let init = initial_uniform(&stage, &models, tech.vdd);
        let out = stage.node_by_name("out").unwrap();

        let fixed = simulate(
            &stage,
            &models,
            &inputs,
            &init,
            &TransientConfig::hspice_1ps(400e-12),
        )
        .unwrap();
        let adaptive = simulate_adaptive(
            &stage,
            &models,
            &inputs,
            &init,
            &AdaptiveConfig::new(400e-12),
        )
        .unwrap();
        let df = fixed
            .waveform(out)
            .unwrap()
            .crossing(tech.vdd / 2.0, false)
            .unwrap();
        let da = adaptive
            .waveform(out)
            .unwrap()
            .crossing(tech.vdd / 2.0, false)
            .unwrap();
        assert!((df - da).abs() / df < 0.03, "fixed {df} vs adaptive {da}");
        assert!(
            adaptive.times.len() < fixed.times.len() / 2,
            "adaptive {} samples vs fixed {}",
            adaptive.times.len(),
            fixed.times.len()
        );
    }

    #[test]
    fn step_sizes_shrink_through_the_transition() {
        let tech = Technology::cmosp35();
        let models = analytic_models(&tech);
        let stage = cells::inverter(&tech, cells::DEFAULT_LOAD).unwrap();
        let inputs = vec![Waveform::step(50e-12, 0.0, tech.vdd)];
        let init = initial_uniform(&stage, &models, tech.vdd);
        let r = simulate_adaptive(
            &stage,
            &models,
            &inputs,
            &init,
            &AdaptiveConfig::new(300e-12),
        )
        .unwrap();
        // Largest step in the quiet pre-transition stretch exceeds the
        // smallest step during the edge.
        let steps: Vec<f64> = r.times.windows(2).map(|w| w[1] - w[0]).collect();
        let before: f64 = steps
            .iter()
            .zip(&r.times)
            .filter(|(_, &t)| t < 40e-12)
            .map(|(s, _)| *s)
            .fold(0.0, f64::max);
        let during: f64 = steps
            .iter()
            .zip(&r.times)
            .filter(|(_, &t)| (45e-12..120e-12).contains(&t))
            .map(|(s, _)| *s)
            .fold(f64::INFINITY, f64::min);
        assert!(before > during, "quiet {before} vs edge {during}");
    }

    #[test]
    fn validation() {
        let tech = Technology::cmosp35();
        let models = analytic_models(&tech);
        let stage = cells::inverter(&tech, cells::DEFAULT_LOAD).unwrap();
        let inputs = vec![Waveform::constant(0.0)];
        let init = initial_uniform(&stage, &models, tech.vdd);
        let bad = AdaptiveConfig {
            h_min: 0.0,
            ..AdaptiveConfig::new(1e-10)
        };
        assert!(simulate_adaptive(&stage, &models, &inputs, &init, &bad).is_err());
    }
}
