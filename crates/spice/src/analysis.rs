//! Derived analyses over transient and DC results: switching energy and
//! DC transfer characteristics.
//!
//! Neither is part of the paper's core loop, but both are the bread and
//! butter of the stage-level characterization flows QWM is meant to
//! accelerate, and they exercise the engines from another angle (charge
//! bookkeeping, sweep-mode Newton continuation).

use crate::dcop::dc_operating_point;
use crate::engine::TransientResult;
use qwm_circuit::stage::{LogicStage, NodeId};
use qwm_device::model::ModelSet;
use qwm_num::{NumError, Result};

/// Switching energy drawn from the capacitive state change of one node
/// over a transient: `E = ∫ C(v) · v dv` between the endpoint voltages —
/// the energy delivered to (or recovered from) the node's capacitance.
///
/// # Errors
///
/// Returns [`NumError::InvalidInput`] for an out-of-range node or a
/// result with fewer than two samples.
pub fn node_switching_energy(
    result: &TransientResult,
    stage: &LogicStage,
    models: &ModelSet,
    node: NodeId,
) -> Result<f64> {
    let trace = result
        .voltages
        .get(node.0)
        .ok_or_else(|| NumError::InvalidInput {
            context: "node_switching_energy",
            detail: format!("node {} out of range", node.0),
        })?;
    if trace.len() < 2 {
        return Err(NumError::InvalidInput {
            context: "node_switching_energy",
            detail: "need at least two samples".to_string(),
        });
    }
    let (v0, v1) = (trace[0], *trace.last().expect("non-empty"));
    // ∫ C(v)·v dv, midpoint rule over a fine voltage grid.
    let n = 256;
    let mut e = 0.0;
    for i in 0..n {
        let v = v0 + (v1 - v0) * (i as f64 + 0.5) / n as f64;
        e += stage.node_cap(node, models, v) * v * (v1 - v0) / n as f64;
    }
    Ok(e.abs())
}

/// One point of a DC transfer characteristic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VtcPoint {
    /// Swept input voltage \[V\].
    pub vin: f64,
    /// Settled output voltage \[V\].
    pub vout: f64,
}

/// Sweeps one input of a stage from 0 to Vdd (others held at fixed
/// values) and records the DC output voltage — the voltage transfer
/// characteristic. Newton continuation: each solve starts from the
/// previous point's solution, so the sweep follows the curve through its
/// high-gain region.
///
/// # Errors
///
/// Returns [`NumError::InvalidInput`] on mis-sized `held` or an unknown
/// input/output, and propagates DC convergence failures.
pub fn dc_transfer(
    stage: &LogicStage,
    models: &ModelSet,
    swept_input: usize,
    held: &[f64],
    output: NodeId,
    points: usize,
) -> Result<Vec<VtcPoint>> {
    if held.len() != stage.inputs().len() {
        return Err(NumError::InvalidInput {
            context: "dc_transfer",
            detail: format!(
                "{} held values for {} inputs",
                held.len(),
                stage.inputs().len()
            ),
        });
    }
    if swept_input >= stage.inputs().len() || points < 2 {
        return Err(NumError::InvalidInput {
            context: "dc_transfer",
            detail: format!("swept={swept_input} points={points}"),
        });
    }
    let vdd = models.tech().vdd;
    let mut input_v = held.to_vec();
    // Continuation seed: mid-rail everywhere.
    let mut guess: Vec<f64> = (0..stage.node_count()).map(|_| vdd / 2.0).collect();
    let mut out = Vec::with_capacity(points);
    for i in 0..points {
        let vin = vdd * i as f64 / (points - 1) as f64;
        input_v[swept_input] = vin;
        let solution = dc_operating_point(stage, models, &input_v, &guess)?;
        out.push(VtcPoint {
            vin,
            vout: solution[output.0],
        });
        guess = solution;
    }
    Ok(out)
}

/// Extracts the switching threshold `V_M` (where `vout == vin`) from a
/// falling VTC by linear interpolation.
///
/// # Errors
///
/// Returns [`NumError::InvalidInput`] if the curve never crosses the
/// unity line.
pub fn switching_threshold(vtc: &[VtcPoint]) -> Result<f64> {
    for w in vtc.windows(2) {
        let (a, b) = (w[0], w[1]);
        let fa = a.vout - a.vin;
        let fb = b.vout - b.vin;
        if fa >= 0.0 && fb < 0.0 {
            let t = fa / (fa - fb);
            return Ok(a.vin + t * (b.vin - a.vin));
        }
    }
    Err(NumError::InvalidInput {
        context: "switching_threshold",
        detail: "VTC never crosses vout = vin".to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{initial_uniform, simulate, TransientConfig};
    use qwm_circuit::cells;
    use qwm_circuit::waveform::Waveform;
    use qwm_device::{analytic_models, Technology};

    #[test]
    fn inverter_vtc_shape() {
        let tech = Technology::cmosp35();
        let models = analytic_models(&tech);
        let inv = cells::inverter(&tech, cells::DEFAULT_LOAD).unwrap();
        let out = inv.node_by_name("out").unwrap();
        let vtc = dc_transfer(&inv, &models, 0, &[0.0], out, 67).unwrap();
        // Ends at the rails.
        assert!(vtc.first().unwrap().vout > tech.vdd - 0.05);
        assert!(vtc.last().unwrap().vout < 0.05);
        // Monotone non-increasing.
        assert!(vtc.windows(2).all(|w| w[1].vout <= w[0].vout + 1e-6));
        // Switching threshold in a plausible band (NMOS weaker k'
        // balance puts it below mid-rail for wp = 2wn here).
        let vm = switching_threshold(&vtc).unwrap();
        assert!(vm > 0.8 && vm < 2.2, "V_M = {vm}");
    }

    #[test]
    fn nand_vtc_depends_on_held_input() {
        let tech = Technology::cmosp35();
        let models = analytic_models(&tech);
        let g = cells::nand(&tech, 2, cells::DEFAULT_LOAD).unwrap();
        let out = g.node_by_name("out").unwrap();
        // Sweep a1 with a0 high: inverting.
        let vtc = dc_transfer(&g, &models, 1, &[tech.vdd, 0.0], out, 34).unwrap();
        let vm = switching_threshold(&vtc).unwrap();
        assert!(vm > 0.5 && vm < 2.5);
        // Sweep a1 with a0 LOW: output stays high (no path to ground).
        let vtc_blocked = dc_transfer(&g, &models, 1, &[0.0, 0.0], out, 12).unwrap();
        assert!(vtc_blocked.iter().all(|p| p.vout > tech.vdd - 0.1));
        // The only unity crossing of a stuck-high curve is pinned at the
        // top rail — not a real switching threshold.
        if let Ok(vm) = switching_threshold(&vtc_blocked) {
            assert!(vm > tech.vdd - 0.15, "degenerate crossing at {vm}");
        }
    }

    #[test]
    fn switching_energy_is_half_cv2_scale() {
        let tech = Technology::cmosp35();
        let models = analytic_models(&tech);
        let stage = cells::nmos_stack(&tech, &[2e-6], 20e-15).unwrap();
        let inputs = vec![Waveform::step(0.0, 0.0, tech.vdd)];
        let init = initial_uniform(&stage, &models, tech.vdd);
        let r = simulate(
            &stage,
            &models,
            &inputs,
            &init,
            &TransientConfig::hspice_1ps(1e-9),
        )
        .unwrap();
        let out = stage.node_by_name("out").unwrap();
        let e = node_switching_energy(&r, &stage, &models, out).unwrap();
        // Scale check: ½·C·Vdd² with C ≈ 25 fF ⇒ ~0.14 pJ band.
        let c_ref = stage.node_cap(out, &models, tech.vdd / 2.0);
        let e_ref = 0.5 * c_ref * tech.vdd * tech.vdd;
        assert!(e > 0.3 * e_ref && e < 3.0 * e_ref, "e {e} vs ref {e_ref}");
    }

    #[test]
    fn argument_validation() {
        let tech = Technology::cmosp35();
        let models = analytic_models(&tech);
        let inv = cells::inverter(&tech, cells::DEFAULT_LOAD).unwrap();
        let out = inv.node_by_name("out").unwrap();
        assert!(dc_transfer(&inv, &models, 0, &[], out, 10).is_err());
        assert!(dc_transfer(&inv, &models, 5, &[0.0], out, 10).is_err());
        assert!(dc_transfer(&inv, &models, 0, &[0.0], out, 1).is_err());
    }
}
