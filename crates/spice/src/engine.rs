//! Fixed-step transient simulation of a logic stage (the HSPICE stand-in).
//!
//! This is the baseline every QWM experiment compares against: classic
//! time-domain numerical integration. At each time step the nonlinear
//! KCL system is solved by damped Newton–Raphson (or, optionally, by
//! successive-chords iteration as in TETA — see [`IterationScheme`]),
//! with the MNA Jacobian factored by dense LU. Step sizes of 1 ps and
//! 10 ps reproduce the two HSPICE columns of Tables I and II.
//!
//! Modeling conventions shared with the QWM engine (so accuracy
//! comparisons measure the *methods*):
//!
//! * node capacitances are the voltage-dependent sums of Eq. (1),
//!   evaluated at the beginning-of-step voltage;
//! * gate-to-channel coupling is lumped to ground by default
//!   (`gate_coupling` re-enables the `C·dG/dt` injection);
//! * a small `gmin` to ground keeps the Jacobian nonsingular when every
//!   device is cut off.

use qwm_circuit::stage::{DeviceKind, LogicStage, NodeId, NodeKind};

use qwm_circuit::waveform::Waveform;
use qwm_device::model::{ModelSet, Polarity};
use qwm_num::matrix::Matrix;
use qwm_num::{NumError, Result};
use std::time::{Duration, Instant};

/// Time-integration method for the capacitor companion model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Integration {
    /// Backward Euler: robust, first order.
    BackwardEuler,
    /// Trapezoidal: second order, the HSPICE default.
    Trapezoidal,
}

/// Nonlinear iteration scheme per time step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IterationScheme {
    /// Newton–Raphson: re-stamp and re-factor the Jacobian every
    /// iteration.
    NewtonRaphson,
    /// Successive chords (TETA, paper §II): factor the Jacobian once at
    /// the start of each step and reuse it for all iterations of that
    /// step; falls back to a fresh factorization if the step fails to
    /// converge.
    SuccessiveChords,
}

/// Transient-analysis configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransientConfig {
    /// Fixed time step \[s\].
    pub step: f64,
    /// Stop time \[s\].
    pub t_stop: f64,
    /// Integration method.
    pub integration: Integration,
    /// Iteration scheme.
    pub iteration: IterationScheme,
    /// Leak conductance to ground on every internal node \[S\].
    pub gmin: f64,
    /// Maximum Newton/chord iterations per step.
    pub max_iterations: usize,
    /// Residual convergence tolerance \[A\].
    pub tol_current: f64,
    /// Update convergence tolerance \[V\].
    pub tol_voltage: f64,
    /// Model the `C·dG/dt` gate-coupling injection.
    pub gate_coupling: bool,
}

impl TransientConfig {
    /// The paper's high-resolution baseline: 1 ps steps.
    pub fn hspice_1ps(t_stop: f64) -> Self {
        TransientConfig {
            step: 1e-12,
            t_stop,
            ..TransientConfig::default()
        }
    }

    /// The paper's coarse baseline: 10 ps steps.
    pub fn hspice_10ps(t_stop: f64) -> Self {
        TransientConfig {
            step: 10e-12,
            t_stop,
            ..TransientConfig::default()
        }
    }
}

impl Default for TransientConfig {
    fn default() -> Self {
        TransientConfig {
            step: 1e-12,
            t_stop: 1e-9,
            integration: Integration::BackwardEuler,
            iteration: IterationScheme::NewtonRaphson,
            gmin: 1e-12,
            max_iterations: 50,
            tol_current: 1e-12,
            tol_voltage: 1e-9,
            gate_coupling: false,
        }
    }
}

/// The result of a transient run.
#[derive(Debug, Clone)]
pub struct TransientResult {
    /// Sample times (uniform grid) \[s\].
    pub times: Vec<f64>,
    /// Per-node voltage samples: `voltages[node][step]` \[V\].
    pub voltages: Vec<Vec<f64>>,
    /// Total nonlinear iterations across all steps.
    pub iterations: usize,
    /// Total Jacobian factorizations (differs from iterations under
    /// successive chords).
    pub factorizations: usize,
    /// Wall-clock time of the solve loop.
    pub elapsed: Duration,
}

impl TransientResult {
    /// The sampled waveform at a node.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::InvalidInput`] for an out-of-range node.
    pub fn waveform(&self, node: NodeId) -> Result<Waveform> {
        let samples = self
            .voltages
            .get(node.0)
            .ok_or_else(|| NumError::InvalidInput {
                context: "TransientResult::waveform",
                detail: format!("node {} out of range", node.0),
            })?;
        Waveform::from_samples(
            self.times
                .iter()
                .copied()
                .zip(samples.iter().copied())
                .collect(),
        )
    }

    /// The discharge/charge current waveform `I_k = C_k · dV_k/dt` at a
    /// node (paper Eq. (2)), reconstructed by central differences with
    /// the same capacitance model used during simulation.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::InvalidInput`] for an out-of-range node or a
    /// run with fewer than three samples.
    pub fn node_current(
        &self,
        stage: &LogicStage,
        models: &ModelSet,
        node: NodeId,
    ) -> Result<Vec<(f64, f64)>> {
        let v = self
            .voltages
            .get(node.0)
            .ok_or_else(|| NumError::InvalidInput {
                context: "TransientResult::node_current",
                detail: format!("node {} out of range", node.0),
            })?;
        if v.len() < 3 {
            return Err(NumError::InvalidInput {
                context: "TransientResult::node_current",
                detail: "need at least 3 samples".to_string(),
            });
        }
        let mut out = Vec::with_capacity(v.len() - 2);
        for i in 1..v.len() - 1 {
            let dt = self.times[i + 1] - self.times[i - 1];
            let dv = v[i + 1] - v[i - 1];
            let c = stage.node_cap(node, models, v[i]);
            out.push((self.times[i], c * dv / dt));
        }
        Ok(out)
    }
}

/// All-internal-nodes-at-`v` initial condition (rails at their fixed
/// values). The canonical precharged-high start for discharge analyses.
pub fn initial_uniform(stage: &LogicStage, models: &ModelSet, v: f64) -> Vec<f64> {
    let vdd = models.tech().vdd;
    (0..stage.node_count())
        .map(|i| match stage.node(NodeId(i)).kind {
            NodeKind::Supply => vdd,
            NodeKind::Ground => 0.0,
            NodeKind::Internal => v,
        })
        .collect()
}

/// Runs a fixed-step transient simulation.
///
/// `inputs` supplies one waveform per stage input (aligned with
/// `stage.inputs()`); `initial` gives the node voltages at `t = 0`
/// (length `stage.node_count()`, rails overridden to their fixed values).
///
/// # Errors
///
/// Returns [`NumError::InvalidInput`] on mis-sized arguments or a
/// non-positive step, [`NumError::NoConvergence`] if a step exhausts the
/// iteration budget, and propagates linear-algebra failures.
pub fn simulate(
    stage: &LogicStage,
    models: &ModelSet,
    inputs: &[Waveform],
    initial: &[f64],
    config: &TransientConfig,
) -> Result<TransientResult> {
    if let Some(e) = qwm_fault::check("spice.transient") {
        return Err(e);
    }
    if inputs.len() != stage.inputs().len() {
        return Err(NumError::InvalidInput {
            context: "spice::simulate",
            detail: format!(
                "{} input waveforms for {} inputs",
                inputs.len(),
                stage.inputs().len()
            ),
        });
    }
    if initial.len() != stage.node_count() {
        return Err(NumError::InvalidInput {
            context: "spice::simulate",
            detail: format!(
                "{} initial voltages for {} nodes",
                initial.len(),
                stage.node_count()
            ),
        });
    }
    if config.step <= 0.0 || config.t_stop < config.step {
        return Err(NumError::InvalidInput {
            context: "spice::simulate",
            detail: format!("step {} stop {}", config.step, config.t_stop),
        });
    }

    let start = Instant::now();
    let _span = qwm_obs::span!("spice.simulate");
    let _trace = qwm_obs::trace::TraceGuard::enter("spice.simulate");
    let mut stepper = Stepper::new(stage, models, inputs, config)?;
    let mut node_v: Vec<f64> = initial.to_vec();
    node_v[stage.source().0] = models.tech().vdd;
    node_v[stage.sink().0] = 0.0;

    let steps = (config.t_stop / config.step).round() as usize;
    let mut times = Vec::with_capacity(steps + 1);
    let mut volts: Vec<Vec<f64>> = vec![Vec::with_capacity(steps + 1); stage.node_count()];
    let record = |times: &mut Vec<f64>, volts: &mut Vec<Vec<f64>>, t: f64, v: &[f64]| {
        times.push(t);
        for (trace, &val) in volts.iter_mut().zip(v) {
            trace.push(val);
        }
    };
    record(&mut times, &mut volts, 0.0, &node_v);

    let h = config.step;
    for step_idx in 1..=steps {
        let t_end = step_idx as f64 * h;
        let t_begin = t_end - h;
        let substeps = if stepper.inputs_move_within(t_begin, t_end) {
            10
        } else {
            1
        };
        for sub in 1..=substeps {
            let t = t_begin + h * sub as f64 / substeps as f64;
            stepper.advance(&mut node_v, t, h / substeps as f64)?;
            if sub == substeps {
                record(&mut times, &mut volts, t, &node_v);
            }
        }
    }

    let (total_iterations, factorizations) = stepper.counters();
    qwm_obs::counter!("spice.transient.steps").add(steps as u64);
    qwm_obs::counter!("spice.transient.nr_iterations").add(total_iterations as u64);
    qwm_obs::counter!("spice.transient.factorizations").add(factorizations as u64);
    Ok(TransientResult {
        times,
        voltages: volts,
        iterations: total_iterations,
        factorizations,
        elapsed: start.elapsed(),
    })
}

/// Reusable single-interval integrator: owns the unknown ordering, the
/// Jacobian workspace and the iteration counters, so both the fixed-step
/// loop and the adaptive controller can advance state without per-call
/// setup.
pub(crate) struct Stepper<'a> {
    stage: &'a LogicStage,
    models: &'a ModelSet,
    inputs: &'a [Waveform],
    config: &'a TransientConfig,
    internal: Vec<NodeId>,
    index_of: Vec<usize>,
    jac: Matrix,
    iterations: usize,
    factorizations: usize,
    breakpoints: Vec<f64>,
}

impl<'a> Stepper<'a> {
    pub(crate) fn new(
        stage: &'a LogicStage,
        models: &'a ModelSet,
        inputs: &'a [Waveform],
        config: &'a TransientConfig,
    ) -> Result<Self> {
        let internal = stage.internal_nodes();
        let n = internal.len();
        let mut index_of = vec![usize::MAX; stage.node_count()];
        for (i, id) in internal.iter().enumerate() {
            index_of[id.0] = i;
        }
        let mut breakpoints: Vec<f64> = inputs
            .iter()
            .flat_map(|w| w.samples().iter().map(|&(t, _)| t))
            .filter(|&t| t > 0.0)
            .collect();
        breakpoints.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
        breakpoints.dedup();
        Ok(Stepper {
            stage,
            models,
            inputs,
            config,
            internal,
            index_of,
            jac: Matrix::zeros(n.max(1), n.max(1))?,
            iterations: 0,
            factorizations: 0,
            breakpoints,
        })
    }

    /// `(total Newton iterations, total factorizations)` so far.
    pub(crate) fn counters(&self) -> (usize, usize) {
        (self.iterations, self.factorizations)
    }

    /// True when an input waveform has a breakpoint strictly inside
    /// `(t0, t1)` or moves materially across it — the sub-step trigger.
    pub(crate) fn inputs_move_within(&self, t0: f64, t1: f64) -> bool {
        self.breakpoints
            .iter()
            .any(|&b| b > t0 + 1e-18 && b < t1 - 1e-18)
            || self
                .inputs
                .iter()
                .any(|w| (w.value(t1) - w.value(t0)).abs() > 1e-3)
    }

    /// Advances `node_v` across one interval ending at absolute time `t`
    /// with span `h`, solving the implicit system by the configured
    /// iteration scheme.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::NoConvergence`] when the iteration budget is
    /// exhausted and propagates device/linear-algebra failures.
    pub(crate) fn advance(&mut self, node_v: &mut [f64], t: f64, h: f64) -> Result<()> {
        let config = self.config;
        let stage = self.stage;
        let models = self.models;
        let n = self.internal.len();
        let vdd = models.tech().vdd;

        let mut input_v = vec![0.0; self.inputs.len()];
        let mut input_slope = vec![0.0; self.inputs.len()];
        for (k, w) in self.inputs.iter().enumerate() {
            input_v[k] = w.value(t);
            input_slope[k] = if config.gate_coupling {
                w.slope(t)
            } else {
                0.0
            };
        }
        // Node caps at beginning-of-step voltages.
        let caps: Vec<f64> = self
            .internal
            .iter()
            .map(|&id| stage.node_cap(id, models, node_v[id.0]))
            .collect();
        let v_prev: Vec<f64> = self.internal.iter().map(|&id| node_v[id.0]).collect();

        // Trapezoidal needs the previous outflow.
        let prev_outflow: Vec<f64> = if config.integration == Integration::Trapezoidal {
            outflow(stage, models, node_v, &input_v, &self.index_of, config.gmin)?
        } else {
            vec![0.0; n]
        };

        let mut x = v_prev.clone();
        let mut converged = false;
        let mut chord: Option<qwm_num::matrix::LuFactors> = None;
        for iter in 0..config.max_iterations {
            self.iterations += 1;
            // Candidate full node voltages.
            let mut cand = node_v.to_vec();
            for (i, &id) in self.internal.iter().enumerate() {
                cand[id.0] = x[i];
            }
            let out_now = outflow(stage, models, &cand, &input_v, &self.index_of, config.gmin)?;
            let mut resid = vec![0.0; n];
            for i in 0..n {
                let dyn_term = caps[i] / h * (x[i] - v_prev[i]);
                let inj = coupling_injection(stage, models, &self.internal, &input_slope, i);
                resid[i] = match config.integration {
                    Integration::BackwardEuler => dyn_term + out_now[i] - inj,
                    Integration::Trapezoidal => {
                        dyn_term + 0.5 * (out_now[i] + prev_outflow[i]) - inj
                    }
                };
            }
            let rnorm = resid.iter().fold(0.0_f64, |m, r| m.max(r.abs()));
            if rnorm < config.tol_current {
                converged = true;
                break;
            }
            // Solve J δ = resid.
            let use_chord = config.iteration == IterationScheme::SuccessiveChords;
            let reusable = if use_chord && iter > 0 {
                chord.clone()
            } else {
                None
            };
            let lu = if let Some(f) = reusable {
                f
            } else {
                self.jac.clear();
                stamp_jacobian(
                    stage,
                    models,
                    &cand,
                    &input_v,
                    &self.index_of,
                    config,
                    h,
                    &caps,
                    &mut self.jac,
                )?;
                self.factorizations += 1;
                let f = self.jac.lu()?;
                if use_chord {
                    chord = Some(f.clone());
                }
                f
            };
            let delta = lu.solve(&resid)?;
            let mut max_update = 0.0_f64;
            for i in 0..n {
                // Damp huge excursions; clamp to the physical window.
                let d = delta[i].clamp(-1.0, 1.0);
                x[i] = (x[i] - d).clamp(-0.5, vdd + 0.5);
                max_update = max_update.max(d.abs());
            }
            if max_update < config.tol_voltage {
                converged = true;
                break;
            }
        }
        if !converged {
            return Err(NumError::NoConvergence {
                method: "spice transient step",
                iterations: config.max_iterations,
                residual: t,
            });
        }
        for (i, &id) in self.internal.iter().enumerate() {
            node_v[id.0] = x[i];
        }
        Ok(())
    }
}

/// Sum of device currents *leaving* each internal node plus the gmin
/// leak, for candidate node voltages.
fn outflow(
    stage: &LogicStage,
    models: &ModelSet,
    node_v: &[f64],
    input_v: &[f64],
    index_of: &[usize],
    gmin: f64,
) -> Result<Vec<f64>> {
    let n = index_of.iter().filter(|&&i| i != usize::MAX).count();
    let mut out = vec![0.0; n];
    for (ei, edge) in stage.edges().iter().enumerate() {
        let tv = stage.edge_voltages(qwm_circuit::stage::EdgeId(ei), node_v, input_v);
        let i = match edge.kind {
            DeviceKind::Nmos => models.for_polarity(Polarity::Nmos).iv(&edge.geom, tv)?,
            DeviceKind::Pmos => models.for_polarity(Polarity::Pmos).iv(&edge.geom, tv)?,
            DeviceKind::Wire => {
                let r = qwm_device::caps::wire_res(models.tech(), edge.geom.w, edge.geom.l);
                (tv.src - tv.snk) / r
            }
        };
        let si = index_of[edge.src.0];
        let ki = index_of[edge.snk.0];
        if si != usize::MAX {
            out[si] += i;
        }
        if ki != usize::MAX {
            out[ki] -= i;
        }
    }
    for (node, &idx) in index_of.iter().enumerate() {
        if idx != usize::MAX {
            out[idx] += gmin * node_v[node];
        }
    }
    Ok(out)
}

/// `C·dG/dt` gate-coupling injection into internal node `i` (zero unless
/// `gate_coupling` put nonzero slopes in `input_slope`).
fn coupling_injection(
    stage: &LogicStage,
    models: &ModelSet,
    internal: &[NodeId],
    input_slope: &[f64],
    i: usize,
) -> f64 {
    let id = internal[i];
    let mut inj = 0.0;
    for &(e, _) in stage.incident(id) {
        let edge = stage.edge(e);
        if let (Some(input), Some(_)) = (edge.input, edge.kind.polarity()) {
            let slope = input_slope[input.0];
            if slope != 0.0 {
                inj += qwm_device::caps::channel_side_cap(models.tech(), &edge.geom) * slope;
            }
        }
    }
    inj
}

/// Stamps `J = C/h + ∂outflow/∂v` into `jac`.
#[allow(clippy::too_many_arguments)]
fn stamp_jacobian(
    stage: &LogicStage,
    models: &ModelSet,
    node_v: &[f64],
    input_v: &[f64],
    index_of: &[usize],
    config: &TransientConfig,
    h: f64,
    caps: &[f64],
    jac: &mut Matrix,
) -> Result<()> {
    let scale = match config.integration {
        Integration::BackwardEuler => 1.0,
        Integration::Trapezoidal => 0.5,
    };
    for (ei, edge) in stage.edges().iter().enumerate() {
        let tv = stage.edge_voltages(qwm_circuit::stage::EdgeId(ei), node_v, input_v);
        let (d_src, d_snk, d_gate) = match edge.kind {
            DeviceKind::Nmos => {
                let e = models
                    .for_polarity(Polarity::Nmos)
                    .iv_eval(&edge.geom, tv)?;
                (e.d_src, e.d_snk, e.d_input)
            }
            DeviceKind::Pmos => {
                let e = models
                    .for_polarity(Polarity::Pmos)
                    .iv_eval(&edge.geom, tv)?;
                (e.d_src, e.d_snk, e.d_input)
            }
            DeviceKind::Wire => {
                let g = 1.0 / qwm_device::caps::wire_res(models.tech(), edge.geom.w, edge.geom.l);
                (g, -g, 0.0)
            }
        };
        let si = index_of[edge.src.0];
        let ki = index_of[edge.snk.0];
        if si != usize::MAX {
            jac.add(si, si, scale * d_src);
            if ki != usize::MAX {
                jac.add(si, ki, scale * d_snk);
            }
        }
        if ki != usize::MAX {
            jac.add(ki, ki, -scale * d_snk);
            if si != usize::MAX {
                jac.add(ki, si, -scale * d_src);
            }
        }
        // Gate driven by another internal node: the channel current also
        // depends on that node's voltage.
        if let Some(gn) = edge.gate_node {
            let gi = index_of[gn.0];
            if gi != usize::MAX && d_gate != 0.0 {
                if si != usize::MAX {
                    jac.add(si, gi, scale * d_gate);
                }
                if ki != usize::MAX {
                    jac.add(ki, gi, -scale * d_gate);
                }
            }
        }
    }
    for (i, &c) in caps.iter().enumerate() {
        jac.add(i, i, c / h + scale * config.gmin);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use qwm_circuit::cells;
    use qwm_device::{analytic_models, Technology};

    fn setup() -> (Technology, ModelSet) {
        let tech = Technology::cmosp35();
        let models = analytic_models(&tech);
        (tech, models)
    }

    #[test]
    fn inverter_discharges_output() {
        let (tech, models) = setup();
        let inv = cells::inverter(&tech, cells::DEFAULT_LOAD).unwrap();
        let inputs = vec![Waveform::step(10e-12, 0.0, tech.vdd)];
        let init = initial_uniform(&inv, &models, tech.vdd);
        let cfg = TransientConfig::hspice_1ps(600e-12);
        let r = simulate(&inv, &models, &inputs, &init, &cfg).unwrap();
        let out = inv.node_by_name("out").unwrap();
        let w = r.waveform(out).unwrap();
        assert!(w.value(0.0) > 3.0);
        assert!(
            w.final_value() < 0.1,
            "output settles low: {}",
            w.final_value()
        );
        assert!(w.crossing(tech.vdd / 2.0, false).is_some());
        assert!(r.iterations > 0);
    }

    #[test]
    fn inverter_charges_output() {
        let (tech, models) = setup();
        let inv = cells::inverter(&tech, cells::DEFAULT_LOAD).unwrap();
        let inputs = vec![Waveform::step(10e-12, tech.vdd, 0.0)];
        let init = initial_uniform(&inv, &models, 0.0);
        let cfg = TransientConfig::hspice_1ps(800e-12);
        let r = simulate(&inv, &models, &inputs, &init, &cfg).unwrap();
        let out = inv.node_by_name("out").unwrap();
        let w = r.waveform(out).unwrap();
        assert!(
            w.final_value() > 3.2,
            "output settles high: {}",
            w.final_value()
        );
    }

    #[test]
    fn nand_discharge_is_slower_with_longer_stack() {
        let (tech, models) = setup();
        let mut delays = Vec::new();
        for n in 2..=4 {
            let g = cells::nand(&tech, n, cells::DEFAULT_LOAD).unwrap();
            let inputs: Vec<Waveform> = (0..n)
                .map(|_| Waveform::step(10e-12, 0.0, tech.vdd))
                .collect();
            let init = initial_uniform(&g, &models, tech.vdd);
            let cfg = TransientConfig::hspice_1ps(2e-9);
            let r = simulate(&g, &models, &inputs, &init, &cfg).unwrap();
            let out = g.node_by_name("out").unwrap();
            let w = r.waveform(out).unwrap();
            let t50 = w.crossing(tech.vdd / 2.0, false).expect("output falls");
            delays.push(t50);
        }
        assert!(delays[0] < delays[1] && delays[1] < delays[2], "{delays:?}");
    }

    #[test]
    fn ten_ps_matches_one_ps_roughly() {
        let (tech, models) = setup();
        let g = cells::nand(&tech, 2, cells::DEFAULT_LOAD).unwrap();
        let inputs: Vec<Waveform> = (0..2)
            .map(|_| Waveform::step(10e-12, 0.0, tech.vdd))
            .collect();
        let init = initial_uniform(&g, &models, tech.vdd);
        let out = g.node_by_name("out").unwrap();
        let r1 = simulate(
            &g,
            &models,
            &inputs,
            &init,
            &TransientConfig::hspice_1ps(1e-9),
        )
        .unwrap();
        let r10 = simulate(
            &g,
            &models,
            &inputs,
            &init,
            &TransientConfig::hspice_10ps(1e-9),
        )
        .unwrap();
        let d1 = r1.waveform(out).unwrap().crossing(1.65, false).unwrap();
        let d10 = r10.waveform(out).unwrap().crossing(1.65, false).unwrap();
        assert!(
            (d1 - d10).abs() < 0.1 * d1,
            "1ps delay {d1} vs 10ps delay {d10}"
        );
    }

    #[test]
    fn trapezoidal_agrees_with_backward_euler() {
        let (tech, models) = setup();
        let g = cells::nand(&tech, 3, cells::DEFAULT_LOAD).unwrap();
        let inputs: Vec<Waveform> = (0..3)
            .map(|_| Waveform::step(10e-12, 0.0, tech.vdd))
            .collect();
        let init = initial_uniform(&g, &models, tech.vdd);
        let out = g.node_by_name("out").unwrap();
        let mut cfg = TransientConfig::hspice_1ps(1.5e-9);
        let be = simulate(&g, &models, &inputs, &init, &cfg).unwrap();
        cfg.integration = Integration::Trapezoidal;
        let tr = simulate(&g, &models, &inputs, &init, &cfg).unwrap();
        let dbe = be.waveform(out).unwrap().crossing(1.65, false).unwrap();
        let dtr = tr.waveform(out).unwrap().crossing(1.65, false).unwrap();
        assert!((dbe - dtr).abs() < 0.03 * dbe, "BE {dbe} vs TR {dtr}");
    }

    #[test]
    fn successive_chords_matches_newton_with_fewer_factorizations() {
        let (tech, models) = setup();
        let g = cells::nand(&tech, 3, cells::DEFAULT_LOAD).unwrap();
        let inputs: Vec<Waveform> = (0..3)
            .map(|_| Waveform::step(10e-12, 0.0, tech.vdd))
            .collect();
        let init = initial_uniform(&g, &models, tech.vdd);
        let out = g.node_by_name("out").unwrap();
        let mut cfg = TransientConfig::hspice_1ps(1.5e-9);
        let nr = simulate(&g, &models, &inputs, &init, &cfg).unwrap();
        cfg.iteration = IterationScheme::SuccessiveChords;
        let sc = simulate(&g, &models, &inputs, &init, &cfg).unwrap();
        let dn = nr.waveform(out).unwrap().crossing(1.65, false).unwrap();
        let ds = sc.waveform(out).unwrap().crossing(1.65, false).unwrap();
        assert!((dn - ds).abs() < 0.02 * dn);
        assert!(
            sc.factorizations < nr.factorizations || nr.iterations == nr.factorizations,
            "chords factor less: sc {} vs nr {}",
            sc.factorizations,
            nr.factorizations
        );
    }

    #[test]
    fn node_current_has_single_peak_per_node() {
        // The core observation behind QWM (paper Fig. 7).
        let (tech, models) = setup();
        let stack = cells::nmos_stack(&tech, &[1.5e-6; 4], cells::DEFAULT_LOAD).unwrap();
        let inputs: Vec<Waveform> = (0..4)
            .map(|_| Waveform::step(5e-12, 0.0, tech.vdd))
            .collect();
        let init = initial_uniform(&stack, &models, tech.vdd);
        let cfg = TransientConfig::hspice_1ps(2e-9);
        let r = simulate(&stack, &models, &inputs, &init, &cfg).unwrap();
        let n1 = stack.node_by_name("n1").unwrap();
        let cur = r.node_current(&stack, &models, n1).unwrap();
        // Count strict sign changes of the derivative of |I| — a single
        // peak allows at most a handful from numerical noise.
        let mags: Vec<f64> = cur.iter().map(|p| p.1.abs()).collect();
        let peak = mags.iter().cloned().fold(0.0_f64, f64::max);
        assert!(peak > 0.0);
        let peak_idx = mags.iter().position(|&m| m == peak).unwrap();
        assert!(peak_idx > 0 && peak_idx < mags.len() - 1);
    }

    #[test]
    fn argument_validation() {
        let (tech, models) = setup();
        let inv = cells::inverter(&tech, cells::DEFAULT_LOAD).unwrap();
        let init = initial_uniform(&inv, &models, tech.vdd);
        let cfg = TransientConfig::hspice_1ps(1e-10);
        assert!(simulate(&inv, &models, &[], &init, &cfg).is_err());
        let inputs = vec![Waveform::constant(0.0)];
        assert!(simulate(&inv, &models, &inputs, &[1.0], &cfg).is_err());
        let bad = TransientConfig { step: 0.0, ..cfg };
        assert!(simulate(&inv, &models, &inputs, &init, &bad).is_err());
    }

    #[test]
    fn quiescent_stage_stays_put() {
        let (tech, models) = setup();
        let inv = cells::inverter(&tech, cells::DEFAULT_LOAD).unwrap();
        // Input low, output precharged high: nothing should move.
        let inputs = vec![Waveform::constant(0.0)];
        let init = initial_uniform(&inv, &models, tech.vdd);
        let cfg = TransientConfig::hspice_10ps(1e-9);
        let r = simulate(&inv, &models, &inputs, &init, &cfg).unwrap();
        let out = inv.node_by_name("out").unwrap();
        let w = r.waveform(out).unwrap();
        assert!((w.final_value() - tech.vdd).abs() < 0.05);
    }
}
