//! DC operating-point analysis.
//!
//! Solves the static KCL system `outflow(v) = 0` for the internal nodes
//! of a stage under fixed input voltages. Used to seed transient runs
//! with consistent initial conditions (DESIGN.md §5.4) — e.g. the
//! steady state of a stack before its switching input arrives.

use crate::engine::TransientConfig;
use qwm_circuit::stage::{DeviceKind, LogicStage};
use qwm_circuit::EdgeId;
use qwm_device::model::{ModelSet, Polarity};
use qwm_num::matrix::Matrix;
use qwm_num::newton::{newton_solve, NewtonOptions, NonlinearSystem};
use qwm_num::{NumError, Result};

struct DcSystem<'a> {
    stage: &'a LogicStage,
    models: &'a ModelSet,
    input_v: &'a [f64],
    internal: Vec<qwm_circuit::NodeId>,
    index_of: Vec<usize>,
    gmin: f64,
    vdd: f64,
}

impl DcSystem<'_> {
    fn full_voltages(&self, x: &[f64]) -> Vec<f64> {
        let mut v = vec![0.0; self.stage.node_count()];
        v[self.stage.source().0] = self.vdd;
        for (i, &id) in self.internal.iter().enumerate() {
            v[id.0] = x[i];
        }
        v
    }
}

impl NonlinearSystem for DcSystem<'_> {
    fn dim(&self) -> usize {
        self.internal.len()
    }

    fn residual(&self, x: &[f64], out: &mut [f64]) -> Result<()> {
        let v = self.full_voltages(x);
        out.iter_mut().for_each(|o| *o = 0.0);
        for (ei, edge) in self.stage.edges().iter().enumerate() {
            let tv = self.stage.edge_voltages(EdgeId(ei), &v, self.input_v);
            let i = match edge.kind {
                DeviceKind::Nmos => self
                    .models
                    .for_polarity(Polarity::Nmos)
                    .iv(&edge.geom, tv)?,
                DeviceKind::Pmos => self
                    .models
                    .for_polarity(Polarity::Pmos)
                    .iv(&edge.geom, tv)?,
                DeviceKind::Wire => {
                    let r =
                        qwm_device::caps::wire_res(self.models.tech(), edge.geom.w, edge.geom.l);
                    (tv.src - tv.snk) / r
                }
            };
            let si = self.index_of[edge.src.0];
            let ki = self.index_of[edge.snk.0];
            if si != usize::MAX {
                out[si] += i;
            }
            if ki != usize::MAX {
                out[ki] -= i;
            }
        }
        for (i, &id) in self.internal.iter().enumerate() {
            out[i] += self.gmin * v[id.0];
        }
        Ok(())
    }

    fn solve_jacobian(&self, x: &[f64], f: &[f64], delta: &mut [f64]) -> Result<()> {
        let n = self.dim();
        let v = self.full_voltages(x);
        let mut jac = Matrix::zeros(n, n)?;
        for (ei, edge) in self.stage.edges().iter().enumerate() {
            let tv = self.stage.edge_voltages(EdgeId(ei), &v, self.input_v);
            let (d_src, d_snk, d_gate) = match edge.kind {
                DeviceKind::Nmos => {
                    let e = self
                        .models
                        .for_polarity(Polarity::Nmos)
                        .iv_eval(&edge.geom, tv)?;
                    (e.d_src, e.d_snk, e.d_input)
                }
                DeviceKind::Pmos => {
                    let e = self
                        .models
                        .for_polarity(Polarity::Pmos)
                        .iv_eval(&edge.geom, tv)?;
                    (e.d_src, e.d_snk, e.d_input)
                }
                DeviceKind::Wire => {
                    let g = 1.0
                        / qwm_device::caps::wire_res(self.models.tech(), edge.geom.w, edge.geom.l);
                    (g, -g, 0.0)
                }
            };
            let si = self.index_of[edge.src.0];
            let ki = self.index_of[edge.snk.0];
            if si != usize::MAX {
                jac.add(si, si, d_src);
                if ki != usize::MAX {
                    jac.add(si, ki, d_snk);
                }
            }
            if ki != usize::MAX {
                jac.add(ki, ki, -d_snk);
                if si != usize::MAX {
                    jac.add(ki, si, -d_src);
                }
            }
            if let Some(gn) = edge.gate_node {
                let gi = self.index_of[gn.0];
                if gi != usize::MAX && d_gate != 0.0 {
                    if si != usize::MAX {
                        jac.add(si, gi, d_gate);
                    }
                    if ki != usize::MAX {
                        jac.add(ki, gi, -d_gate);
                    }
                }
            }
        }
        for i in 0..n {
            jac.add(i, i, self.gmin);
        }
        delta.copy_from_slice(&jac.solve(f)?);
        Ok(())
    }

    fn project(&self, x: &mut [f64]) {
        for v in x.iter_mut() {
            *v = v.clamp(-0.5, self.vdd + 0.5);
        }
    }
}

/// Computes the DC operating point of `stage` under fixed `input_v`
/// (one value per input), starting from `guess` (one value per node,
/// rails ignored). Returns full node voltages.
///
/// # Errors
///
/// Returns [`NumError::InvalidInput`] on mis-sized arguments and
/// [`NumError::NoConvergence`] if Newton fails from the given guess.
pub fn dc_operating_point(
    stage: &LogicStage,
    models: &ModelSet,
    input_v: &[f64],
    guess: &[f64],
) -> Result<Vec<f64>> {
    if input_v.len() != stage.inputs().len() {
        return Err(NumError::InvalidInput {
            context: "dc_operating_point",
            detail: format!(
                "{} input values for {} inputs",
                input_v.len(),
                stage.inputs().len()
            ),
        });
    }
    if guess.len() != stage.node_count() {
        return Err(NumError::InvalidInput {
            context: "dc_operating_point",
            detail: format!("{} guesses for {} nodes", guess.len(), stage.node_count()),
        });
    }
    let internal = stage.internal_nodes();
    let mut index_of = vec![usize::MAX; stage.node_count()];
    for (i, id) in internal.iter().enumerate() {
        index_of[id.0] = i;
    }
    let sys = DcSystem {
        stage,
        models,
        input_v,
        internal: internal.clone(),
        index_of,
        gmin: TransientConfig::default().gmin,
        vdd: models.tech().vdd,
    };
    let x0: Vec<f64> = internal.iter().map(|&id| guess[id.0]).collect();
    let opts = NewtonOptions {
        max_iterations: 200,
        tol_residual: 1e-12,
        tol_update: 1e-12,
        max_backtracks: 10,
    };
    let out = newton_solve(&sys, &x0, &opts)?;
    Ok(sys.full_voltages(&out.x))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::initial_uniform;
    use qwm_circuit::cells;
    use qwm_device::{analytic_models, Technology};

    #[test]
    fn inverter_dc_levels() {
        let tech = Technology::cmosp35();
        let models = analytic_models(&tech);
        let inv = cells::inverter(&tech, cells::DEFAULT_LOAD).unwrap();
        let guess = initial_uniform(&inv, &models, tech.vdd / 2.0);
        // Input low → output high.
        let v = dc_operating_point(&inv, &models, &[0.0], &guess).unwrap();
        let out = inv.node_by_name("out").unwrap();
        assert!(v[out.0] > tech.vdd - 0.05, "out = {}", v[out.0]);
        // Input high → output low.
        let v = dc_operating_point(&inv, &models, &[tech.vdd], &guess).unwrap();
        assert!(v[out.0] < 0.05, "out = {}", v[out.0]);
    }

    #[test]
    fn nand_with_one_input_low_holds_high() {
        let tech = Technology::cmosp35();
        let models = analytic_models(&tech);
        let g = cells::nand(&tech, 2, cells::DEFAULT_LOAD).unwrap();
        let guess = initial_uniform(&g, &models, tech.vdd / 2.0);
        let v = dc_operating_point(&g, &models, &[tech.vdd, 0.0], &guess).unwrap();
        let out = g.node_by_name("out").unwrap();
        assert!(v[out.0] > tech.vdd - 0.05);
        // Internal stack node: pulled to ground through the on bottom
        // transistor (a0 is nearest ground and is high).
        let n1 = g.node_by_name("n1").unwrap();
        assert!(v[n1.0] < 0.05, "n1 = {}", v[n1.0]);
    }

    #[test]
    fn rails_are_fixed() {
        let tech = Technology::cmosp35();
        let models = analytic_models(&tech);
        let inv = cells::inverter(&tech, cells::DEFAULT_LOAD).unwrap();
        let guess = initial_uniform(&inv, &models, 0.0);
        let v = dc_operating_point(&inv, &models, &[0.0], &guess).unwrap();
        assert_eq!(v[inv.source().0], tech.vdd);
        assert_eq!(v[inv.sink().0], 0.0);
    }

    #[test]
    fn argument_validation() {
        let tech = Technology::cmosp35();
        let models = analytic_models(&tech);
        let inv = cells::inverter(&tech, cells::DEFAULT_LOAD).unwrap();
        let guess = initial_uniform(&inv, &models, 0.0);
        assert!(dc_operating_point(&inv, &models, &[], &guess).is_err());
        assert!(dc_operating_point(&inv, &models, &[0.0], &[0.0]).is_err());
    }
}
