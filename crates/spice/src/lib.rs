//! A SPICE-class transient engine for CMOS logic stages.
//!
//! This crate is the reproduction's stand-in for HSPICE (see DESIGN.md
//! §2): classic time-domain numerical integration with Newton–Raphson at
//! every fixed time step, over the same device models the QWM engine
//! uses. It provides:
//!
//! * [`engine`] — fixed-step transient analysis (backward Euler or
//!   trapezoidal), Newton–Raphson or successive-chords iteration (the
//!   TETA baseline), per-run iteration/factorization counters and wall
//!   time for the Table I/II speedup columns;
//! * [`dcop`] — DC operating-point analysis used to seed consistent
//!   initial conditions.
//!
//! # Example
//!
//! Discharge a NAND2 and measure the 50 % delay:
//!
//! ```
//! use qwm_circuit::cells;
//! use qwm_circuit::waveform::Waveform;
//! use qwm_device::{analytic_models, Technology};
//! use qwm_spice::engine::{initial_uniform, simulate, TransientConfig};
//!
//! # fn main() -> Result<(), qwm_num::NumError> {
//! let tech = Technology::cmosp35();
//! let models = analytic_models(&tech);
//! let gate = cells::nand(&tech, 2, cells::DEFAULT_LOAD)?;
//! let inputs = vec![Waveform::step(0.0, 0.0, tech.vdd); 2];
//! let init = initial_uniform(&gate, &models, tech.vdd);
//! let result = simulate(&gate, &models, &inputs, &init, &TransientConfig::hspice_1ps(1.5e-9))?;
//! let out = gate.node_by_name("out").expect("output node");
//! let delay = result.waveform(out)?.crossing(tech.vdd / 2.0, false);
//! assert!(delay.is_some());
//! # Ok(())
//! # }
//! ```

pub mod adaptive;
pub mod analysis;
pub mod dcop;
pub mod engine;

pub use adaptive::{simulate_adaptive, AdaptiveConfig};
pub use analysis::{dc_transfer, node_switching_energy, switching_threshold, VtcPoint};
pub use dcop::dc_operating_point;
pub use engine::{
    initial_uniform, simulate, Integration, IterationScheme, TransientConfig, TransientResult,
};
