//! Deterministic fault injection for failure-path testing.
//!
//! The QWM pipeline has a small set of numeric failure modes — Newton
//! stalls, singular pivots, table lookups outside the characterized
//! grid, exhausted budgets — that are hard to reach with well-formed
//! netlists. This crate makes every one of them reachable on demand:
//! engines declare named **sites** (`"qwm.region"`, `"spice.adaptive"`,
//! `"device.table"`, ...) and a process-global **fault plan** decides,
//! deterministically from a seed, which site invocations fail and with
//! what [`NumError`].
//!
//! Like `QWM_OBS`, the layer is **off by default** and costs a single
//! relaxed atomic load per site when no plan is installed — production
//! runs pay nothing. A plan comes from the builder API or from the
//! `QWM_FAULTS` environment variable:
//!
//! ```text
//! QWM_FAULTS='seed=42;qwm.region=noconv;spice.adaptive=singular:0.5:3'
//! #           └ seed ┘ └ site = kind [: probability [: max fires]] ┘
//! ```
//!
//! Fault kinds: `noconv`, `singular`, `outofgrid`, `timeout`.
//!
//! Rules with probability `1` (the default) fire on **every** match —
//! their effect is independent of evaluation order, so reports stay
//! bitwise-identical at any worker count. Probabilistic rules
//! (`prob < 1`) draw from a per-rule seeded stream indexed by match
//! count; under parallel evaluation the match order is scheduler
//! dependent, so treat them as chaos-mode only.
//!
//! Retry rungs re-enter the same code site; a thread-local [`scope`]
//! distinguishes them. Inside `scope("retry")` the site `"qwm.region"`
//! matches rules for `"retry/qwm.region"` instead — a plan can fail the
//! first QWM attempt while letting the retry succeed (or vice versa).
//!
//! ```
//! qwm_fault::install(qwm_fault::FaultPlan::new(1).inject("demo.site", qwm_fault::FaultKind::Singular));
//! assert!(qwm_fault::check("demo.site").is_some());
//! {
//!     let _g = qwm_fault::scope("retry");
//!     assert!(qwm_fault::check("demo.site").is_none()); // "retry/demo.site" has no rule
//! }
//! qwm_fault::clear();
//! assert!(qwm_fault::check("demo.site").is_none());
//! ```

use qwm_num::rng::Rng64;
use qwm_num::NumError;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, RwLock};

/// Which [`NumError`] an injected fault materializes as.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// An iterative method stalls (`NumError::NoConvergence`).
    NoConvergence,
    /// A factorization hits a zero pivot (`NumError::Singular`).
    Singular,
    /// A table lookup lands outside the characterized grid
    /// (`NumError::InvalidInput`).
    OutOfGrid,
    /// A stage exceeds its wall/iteration budget (`NumError::Timeout`).
    Timeout,
}

impl FaultKind {
    /// Spec-grammar name (`noconv`, `singular`, `outofgrid`, `timeout`).
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::NoConvergence => "noconv",
            FaultKind::Singular => "singular",
            FaultKind::OutOfGrid => "outofgrid",
            FaultKind::Timeout => "timeout",
        }
    }

    /// Parses a spec-grammar name.
    pub fn parse(s: &str) -> Option<FaultKind> {
        match s {
            "noconv" => Some(FaultKind::NoConvergence),
            "singular" => Some(FaultKind::Singular),
            "outofgrid" => Some(FaultKind::OutOfGrid),
            "timeout" => Some(FaultKind::Timeout),
            _ => None,
        }
    }

    /// The error an injected fault of this kind produces. `site` is the
    /// effective (scope-qualified) site, for post-mortem attribution.
    pub fn to_error(self, site: &str) -> NumError {
        match self {
            FaultKind::NoConvergence => NumError::NoConvergence {
                method: "fault-injected solve",
                iterations: 0,
                residual: f64::INFINITY,
            },
            FaultKind::Singular => NumError::Singular {
                index: 0,
                pivot: 0.0,
            },
            FaultKind::OutOfGrid => NumError::InvalidInput {
                context: "fault-injected table lookup",
                detail: format!("operating point outside characterized grid at {site}"),
            },
            FaultKind::Timeout => NumError::Timeout {
                context: "fault-injected budget",
                detail: format!("budget exhausted at {site}"),
            },
        }
    }
}

/// One `site → kind` injection rule with optional probability and cap.
#[derive(Debug)]
pub struct FaultRule {
    /// Effective site this rule matches (exact string, scope-qualified).
    pub site: String,
    /// Error to inject on fire.
    pub kind: FaultKind,
    /// Fire probability per match, in `(0, 1]`; `1.0` fires always.
    pub prob: f64,
    /// Maximum number of fires; `None` is unbounded.
    pub max: Option<u64>,
    checked: AtomicU64,
    fired: AtomicU64,
}

/// Point-in-time counters for one rule, from [`stats`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuleStats {
    /// The rule's site pattern.
    pub site: String,
    /// Times a site check matched this rule.
    pub checked: u64,
    /// Times the rule actually injected a fault.
    pub fired: u64,
}

/// A seeded set of injection rules.
#[derive(Debug, Default)]
pub struct FaultPlan {
    /// Seed for the probabilistic-rule streams.
    pub seed: u64,
    /// Rules, consulted in order; the first that fires wins.
    pub rules: Vec<FaultRule>,
}

impl FaultPlan {
    /// An empty plan with the given seed.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            rules: Vec::new(),
        }
    }

    /// Adds an always-fire rule (probability 1, unbounded).
    #[must_use]
    pub fn inject(self, site: impl Into<String>, kind: FaultKind) -> FaultPlan {
        self.inject_with(site, kind, 1.0, None)
    }

    /// Adds a rule with explicit probability and fire cap.
    #[must_use]
    pub fn inject_with(
        mut self,
        site: impl Into<String>,
        kind: FaultKind,
        prob: f64,
        max: Option<u64>,
    ) -> FaultPlan {
        self.rules.push(FaultRule {
            site: site.into(),
            kind,
            prob,
            max,
            checked: AtomicU64::new(0),
            fired: AtomicU64::new(0),
        });
        self
    }

    /// Parses the `QWM_FAULTS` spec grammar:
    /// `[seed=N;]site=kind[:prob[:max]][;...]`.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message on malformed clauses, unknown
    /// kinds, or out-of-range probabilities.
    pub fn parse(spec: &str) -> std::result::Result<FaultPlan, String> {
        let mut plan = FaultPlan::new(0);
        for clause in spec.split(';') {
            let clause = clause.trim();
            if clause.is_empty() {
                continue;
            }
            let (lhs, rhs) = clause
                .split_once('=')
                .ok_or_else(|| format!("fault clause {clause:?} is not site=kind"))?;
            let (lhs, rhs) = (lhs.trim(), rhs.trim());
            if lhs == "seed" {
                plan.seed = rhs.parse().map_err(|e| format!("bad seed {rhs:?}: {e}"))?;
                continue;
            }
            if lhs.is_empty() {
                return Err(format!("fault clause {clause:?} has an empty site"));
            }
            let mut parts = rhs.split(':');
            let kind_name = parts.next().unwrap_or("");
            let kind = FaultKind::parse(kind_name).ok_or_else(|| {
                format!("unknown fault kind {kind_name:?} (noconv|singular|outofgrid|timeout)")
            })?;
            let prob = match parts.next() {
                Some(p) => {
                    let v: f64 = p
                        .parse()
                        .map_err(|e| format!("bad probability {p:?}: {e}"))?;
                    if !(v > 0.0 && v <= 1.0) {
                        return Err(format!("probability {v} outside (0, 1]"));
                    }
                    v
                }
                None => 1.0,
            };
            let max = match parts.next() {
                Some(m) => Some(m.parse().map_err(|e| format!("bad max {m:?}: {e}"))?),
                None => None,
            };
            if parts.next().is_some() {
                return Err(format!("trailing fields in fault clause {clause:?}"));
            }
            plan = plan.inject_with(lhs, kind, prob, max);
        }
        Ok(plan)
    }

    /// Parses the `QWM_FAULTS` environment variable, if set. The error
    /// carries the variable name, raw value and parse failure.
    pub fn from_env() -> Option<std::result::Result<FaultPlan, qwm_obs::env::EnvParseError>> {
        match qwm_obs::env::read_env("QWM_FAULTS", Self::parse) {
            Ok(None) => None,
            Ok(Some(plan)) => Some(Ok(plan)),
            Err(e) => Some(Err(e)),
        }
    }
}

const STATE_OFF: u8 = 0;
const STATE_ACTIVE: u8 = 1;
const STATE_UNSET: u8 = u8::MAX;

static STATE: AtomicU8 = AtomicU8::new(STATE_UNSET);

fn plan_slot() -> &'static RwLock<Option<Arc<FaultPlan>>> {
    static PLAN: std::sync::OnceLock<RwLock<Option<Arc<FaultPlan>>>> = std::sync::OnceLock::new();
    PLAN.get_or_init(|| RwLock::new(None))
}

thread_local! {
    static SCOPES: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// Installs a plan process-wide, replacing any previous one and
/// resetting its counters. An empty plan is equivalent to [`clear`].
pub fn install(plan: FaultPlan) {
    let state = if plan.rules.is_empty() {
        STATE_OFF
    } else {
        STATE_ACTIVE
    };
    *plan_slot().write().expect("fault plan lock") = Some(Arc::new(plan));
    STATE.store(state, Ordering::Relaxed);
}

/// Removes the installed plan; every subsequent [`check`] is a no-op.
pub fn clear() {
    *plan_slot().write().expect("fault plan lock") = None;
    STATE.store(STATE_OFF, Ordering::Relaxed);
}

fn state() -> u8 {
    match STATE.load(Ordering::Relaxed) {
        STATE_UNSET => {
            // First use: adopt QWM_FAULTS if present and well-formed.
            // A malformed spec is surfaced loudly rather than ignored.
            match FaultPlan::from_env() {
                Some(Ok(plan)) => install(plan),
                Some(Err(e)) => {
                    qwm_obs::env::report_malformed(&e, "no faults injected");
                    STATE.store(STATE_OFF, Ordering::Relaxed);
                }
                None => STATE.store(STATE_OFF, Ordering::Relaxed),
            }
            STATE.load(Ordering::Relaxed)
        }
        s => s,
    }
}

/// True when a non-empty plan is installed (reading `QWM_FAULTS` on
/// first use).
pub fn active() -> bool {
    state() == STATE_ACTIVE
}

/// Pushes a scope qualifier for the current thread; inside the guard a
/// site `s` matches rules for `"name/s"` instead of `"s"`. Scopes nest
/// (`"a/b/s"`).
pub fn scope(name: &'static str) -> ScopeGuard {
    SCOPES.with(|s| s.borrow_mut().push(name));
    ScopeGuard {
        _not_send: std::marker::PhantomData,
    }
}

/// RAII guard from [`scope`]; pops the qualifier on drop.
#[must_use = "the scope ends when the guard drops"]
pub struct ScopeGuard {
    // Popping must happen on the pushing thread.
    _not_send: std::marker::PhantomData<*const ()>,
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        SCOPES.with(|s| {
            s.borrow_mut().pop();
        });
    }
}

/// The fault gate engines call at a named site. Returns the injected
/// error when a rule fires, `None` otherwise. One relaxed atomic load
/// when no plan is installed.
#[inline]
pub fn check(site: &'static str) -> Option<NumError> {
    if state() != STATE_ACTIVE {
        return None;
    }
    check_slow(site)
}

#[cold]
fn check_slow(site: &'static str) -> Option<NumError> {
    let guard = plan_slot().read().expect("fault plan lock");
    let plan = guard.as_ref()?;
    let effective = SCOPES.with(|s| {
        let s = s.borrow();
        if s.is_empty() {
            site.to_string()
        } else {
            let mut e = s.join("/");
            e.push('/');
            e.push_str(site);
            e
        }
    });
    for (idx, rule) in plan.rules.iter().enumerate() {
        if rule.site != effective {
            continue;
        }
        let n = rule.checked.fetch_add(1, Ordering::Relaxed);
        let roll = if rule.prob >= 1.0 {
            true
        } else {
            // Per-rule seeded stream indexed by match count: the same
            // plan replays the same fire pattern for the same match
            // order.
            let mix = plan
                .seed
                .wrapping_add((idx as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15))
                .wrapping_add(n.wrapping_mul(0xbf58_476d_1ce4_e5b9));
            Rng64::seed_from_u64(mix).unit() < rule.prob
        };
        if !roll {
            continue;
        }
        if let Some(max) = rule.max {
            let won = rule
                .fired
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |f| {
                    (f < max).then_some(f + 1)
                })
                .is_ok();
            if !won {
                continue;
            }
        } else {
            rule.fired.fetch_add(1, Ordering::Relaxed);
        }
        qwm_obs::counter!("fault.injected").incr();
        qwm_obs::warn("fault.injected")
            .field("site", &effective)
            .field("kind", rule.kind.name())
            .emit();
        return Some(rule.kind.to_error(&effective));
    }
    None
}

/// Per-rule counters of the installed plan (empty when none).
pub fn stats() -> Vec<RuleStats> {
    let guard = plan_slot().read().expect("fault plan lock");
    let Some(plan) = guard.as_ref() else {
        return Vec::new();
    };
    plan.rules
        .iter()
        .map(|r| RuleStats {
            site: r.site.clone(),
            checked: r.checked.load(Ordering::Relaxed),
            fired: r.fired.load(Ordering::Relaxed),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    // The plan is process-global; serialize every test that touches it.
    static LOCK: Mutex<()> = Mutex::new(());

    fn locked() -> std::sync::MutexGuard<'static, ()> {
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn parse_full_grammar() {
        let plan =
            FaultPlan::parse("seed=7; qwm.region=noconv; spice.adaptive=singular:0.25:3").unwrap();
        assert_eq!(plan.seed, 7);
        assert_eq!(plan.rules.len(), 2);
        assert_eq!(plan.rules[0].site, "qwm.region");
        assert_eq!(plan.rules[0].kind, FaultKind::NoConvergence);
        assert_eq!(plan.rules[0].prob, 1.0);
        assert_eq!(plan.rules[0].max, None);
        assert_eq!(plan.rules[1].site, "spice.adaptive");
        assert_eq!(plan.rules[1].kind, FaultKind::Singular);
        assert_eq!(plan.rules[1].prob, 0.25);
        assert_eq!(plan.rules[1].max, Some(3));
    }

    #[test]
    fn from_env_names_the_variable_on_malformed_specs() {
        let _g = locked();
        let prior = std::env::var("QWM_FAULTS").ok();
        std::env::set_var("QWM_FAULTS", "definitely;not=a;plan");
        let err = FaultPlan::from_env().expect("var is set").unwrap_err();
        assert_eq!(err.name, "QWM_FAULTS");
        assert_eq!(err.raw, "definitely;not=a;plan");
        assert!(err.to_string().contains("QWM_FAULTS"), "{err}");
        match prior {
            Some(v) => std::env::set_var("QWM_FAULTS", v),
            None => std::env::remove_var("QWM_FAULTS"),
        }
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        assert!(FaultPlan::parse("nonsense").is_err());
        assert!(FaultPlan::parse("a=unknownkind").is_err());
        assert!(FaultPlan::parse("a=noconv:2.0").is_err());
        assert!(FaultPlan::parse("a=noconv:0.5:x").is_err());
        assert!(FaultPlan::parse("a=noconv:0.5:1:extra").is_err());
        assert!(FaultPlan::parse("seed=notanumber").is_err());
        assert!(FaultPlan::parse("=noconv").is_err());
        // Empty/whitespace specs are valid empty plans.
        assert!(FaultPlan::parse("").unwrap().rules.is_empty());
        assert!(FaultPlan::parse(" ; ").unwrap().rules.is_empty());
    }

    #[test]
    fn every_kind_round_trips_and_materializes() {
        for kind in [
            FaultKind::NoConvergence,
            FaultKind::Singular,
            FaultKind::OutOfGrid,
            FaultKind::Timeout,
        ] {
            assert_eq!(FaultKind::parse(kind.name()), Some(kind));
            // The error must render something attributable.
            let msg = kind.to_error("some.site").to_string();
            assert!(!msg.is_empty());
        }
    }

    #[test]
    fn check_fires_only_at_matching_sites() {
        let _g = locked();
        install(FaultPlan::new(0).inject("hit.site", FaultKind::Singular));
        assert!(check("miss.site").is_none());
        assert!(matches!(check("hit.site"), Some(NumError::Singular { .. })));
        let s = stats();
        assert_eq!(s[0].checked, 1);
        assert_eq!(s[0].fired, 1);
        clear();
        assert!(check("hit.site").is_none());
    }

    #[test]
    fn scopes_qualify_the_site() {
        let _g = locked();
        install(
            FaultPlan::new(0)
                .inject("retry/s.x", FaultKind::NoConvergence)
                .inject("a/b/s.x", FaultKind::Timeout),
        );
        assert!(check("s.x").is_none(), "unscoped site has no rule");
        {
            let _r = scope("retry");
            assert!(matches!(check("s.x"), Some(NumError::NoConvergence { .. })));
        }
        assert!(check("s.x").is_none(), "scope popped on drop");
        {
            let _a = scope("a");
            let _b = scope("b");
            assert!(matches!(check("s.x"), Some(NumError::Timeout { .. })));
        }
        clear();
    }

    #[test]
    fn max_caps_the_fire_count() {
        let _g = locked();
        install(FaultPlan::new(0).inject_with("capped", FaultKind::Singular, 1.0, Some(2)));
        let fired = (0..5).filter(|_| check("capped").is_some()).count();
        assert_eq!(fired, 2);
        let s = stats();
        assert_eq!(s[0].checked, 5);
        assert_eq!(s[0].fired, 2);
        clear();
    }

    #[test]
    fn probabilistic_rules_replay_the_same_pattern() {
        let _g = locked();
        let pattern = |seed: u64| -> Vec<bool> {
            install(FaultPlan::new(seed).inject_with("p", FaultKind::NoConvergence, 0.5, None));
            let v = (0..64).map(|_| check("p").is_some()).collect();
            clear();
            v
        };
        let a = pattern(3);
        let b = pattern(3);
        assert_eq!(a, b, "same seed, same fire pattern");
        let c = pattern(4);
        assert_ne!(a, c, "different seed, different pattern");
        let fires = a.iter().filter(|&&f| f).count();
        assert!((10..=54).contains(&fires), "p=0.5 over 64: {fires}");
    }

    #[test]
    fn first_matching_rule_that_fires_wins() {
        let _g = locked();
        install(
            FaultPlan::new(0)
                .inject_with("dup", FaultKind::Singular, 1.0, Some(1))
                .inject("dup", FaultKind::Timeout),
        );
        assert!(matches!(check("dup"), Some(NumError::Singular { .. })));
        // Rule 0 is exhausted; rule 1 takes over.
        assert!(matches!(check("dup"), Some(NumError::Timeout { .. })));
        clear();
    }

    #[test]
    fn empty_plan_is_off() {
        let _g = locked();
        install(FaultPlan::new(9));
        assert!(!active());
        assert!(check("anything").is_none());
        clear();
    }
}
