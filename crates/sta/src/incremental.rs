//! Incremental STA: dirty-cone re-timing over a persistent commit book.
//!
//! The paper's decomposition makes a single stage evaluation cheap; the
//! flow that makes *repeated* analysis cheap — the sizing/optimization
//! loop the paper targets — is not re-solving what didn't change. This
//! module adds that flow on top of the levelized-parallel engine:
//!
//! * a **persistent arrival/slew book** ([`CommittedBook`]) survives
//!   across runs, holding the per-net `(arrival, slew, committing
//!   stage)` state of the last analysis;
//! * a first-class **edit API** ([`Edit`], [`StaEngine::apply_edits`],
//!   [`StaEngine::set_net_load`], [`StaEngine::set_input_slew`], plus
//!   the existing [`StaEngine::resize_device`]) marks exactly the
//!   edited stages dirty and surgically invalidates their cached arcs;
//! * [`StaEngine::run_incremental`] levelizes **only the dirty fanout
//!   cone** and re-evaluates it dependency-driven, stopping early at
//!   any net whose recommitted `(arrival, slew)` is bitwise-unchanged.
//!
//! # Correctness contract
//!
//! The report returned by [`StaEngine::run_incremental`] is
//! **bitwise-identical** to a cold [`StaEngine::run_with_slew`] at the
//! engine's current input slew, at any worker count, for any edit
//! sequence (pinned by `tests/incremental.rs`). The argument:
//!
//! 1. Every stage whose inputs could have changed lies in the static
//!    fanout cone of the dirty seeds (cone closure), so stages outside
//!    the cone keep their committed values — which are the cold-run
//!    values by induction.
//! 2. Inside the cone, a stage re-evaluates iff it is a seed or one of
//!    its fanin nets actually changed; otherwise its old commit stands.
//!    Re-evaluated arcs hit the exact-keyed caches
//!    ([`crate::engine::CacheKey`] carries the full slew bit pattern
//!    and the transition), so an arc at an unchanged operating point
//!    reproduces the cold value bit for bit.
//! 3. Each net is committed by exactly one stage and the cone sub-DAG
//!    preserves every in-cone dependency edge, so commit order has the
//!    same happens-before structure as the full run.
//!
//! Degradation provenance is drained per report by degrading
//! evaluators (e.g. `FallbackEvaluator`), so only the *report bodies*
//! (arrivals, slews, worst, critical path) carry the bitwise contract;
//! `evaluations` naturally differs (that is the point).

use crate::engine::{NetCommit, StaEngine, TimingReport, NO_PRED};
use crate::evaluator::StageEvaluator;
use crate::graph::StageId;
use qwm_circuit::netlist::NetId;
use qwm_exec::Levelizer;
use qwm_num::{NumError, Result};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

/// The persistent per-net commit book of the last incremental run.
#[derive(Debug, Clone)]
pub(crate) struct CommittedBook {
    /// Evaluator that produced the book; a different evaluator forces
    /// a full re-run (its numbers are not comparable).
    pub(crate) evaluator: &'static str,
    /// Seed slew the book was computed at.
    pub(crate) input_slew: f64,
    /// `(arrival, slew, committing stage or NO_PRED)` per net index;
    /// `None` for nets never committed (rails, floating nets).
    pub(crate) book: Vec<Option<NetCommit>>,
}

/// Statistics of the last [`StaEngine::run_incremental`] call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IncrementalStats {
    /// Whether the run fell back to a full propagation (first run, or
    /// evaluator switch).
    pub full_run: bool,
    /// Stages in the static fanout cone of the dirty seeds (the upper
    /// bound of re-evaluation; the whole graph for a full run).
    pub dirty_stages: usize,
    /// Stages actually re-evaluated (triggered: seed-dirty or a fanin
    /// net changed).
    pub evaluated_stages: usize,
    /// Timing arcs requested by triggered stages that were served from
    /// the exact-keyed caches instead of the evaluator.
    pub reused_arcs: usize,
    /// Nets whose recommitted `(arrival, slew)` was bitwise-unchanged,
    /// stopping propagation early (includes the outputs of in-cone
    /// stages that never triggered).
    pub early_stop_nets: usize,
    /// Evaluator calls performed by this run.
    pub evaluations: usize,
}

/// One circuit edit for the what-if flow; apply batches with
/// [`StaEngine::apply_edits`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Edit {
    /// Resize netlist device `device` to width `w` (metres).
    ResizeDevice {
        /// Netlist device index.
        device: usize,
        /// New channel width \[m\].
        w: f64,
    },
    /// Set the explicit grounded load at `net` to an absolute value.
    SetNetLoad {
        /// The loaded net.
        net: NetId,
        /// New total explicit capacitance \[F\].
        cap: f64,
    },
    /// Change the seed slew at the primary inputs.
    SetInputSlew {
        /// New 10–90 % input slew \[s\].
        slew: f64,
    },
}

/// Parses a what-if edit script against a netlist: one edit per line,
/// `#` comments, SI value suffixes (see `qwm_circuit::parser`).
///
/// ```text
/// resize <device-name> <width>   # e.g. resize MN2 1.2u
/// load <net-name> <cap>          # e.g. load n3 25f
/// slew <ps>                      # e.g. slew 40
/// ```
///
/// Shared by the `qwm --edits` CLI mode and the serving layer's `edit`
/// command, so both speak exactly the same grammar.
///
/// # Errors
///
/// Returns a message carrying the 1-based script line for unknown
/// verbs/devices/nets, malformed values, or trailing tokens.
pub fn parse_edit_script(
    text: &str,
    netlist: &qwm_circuit::netlist::Netlist,
) -> std::result::Result<Vec<Edit>, String> {
    use qwm_circuit::parser::parse_value;
    let mut edits = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let at = |e: &str| format!("edits line {}: {e}", lineno + 1);
        let mut tok = line.split_whitespace();
        let verb = tok.next().expect("non-empty line");
        let edit = match verb {
            "resize" => {
                let name = tok.next().ok_or_else(|| at("resize needs a device name"))?;
                let w = tok.next().ok_or_else(|| at("resize needs a width"))?;
                let device = netlist
                    .find_device(name)
                    .ok_or_else(|| at(&format!("unknown device {name:?}")))?;
                let w = parse_value(w).map_err(|e| at(&e.to_string()))?;
                Edit::ResizeDevice { device, w }
            }
            "load" => {
                let name = tok.next().ok_or_else(|| at("load needs a net name"))?;
                let cap = tok.next().ok_or_else(|| at("load needs a capacitance"))?;
                let net = netlist
                    .find_net(name)
                    .ok_or_else(|| at(&format!("unknown net {name:?}")))?;
                let cap = parse_value(cap).map_err(|e| at(&e.to_string()))?;
                Edit::SetNetLoad { net, cap }
            }
            "slew" => {
                let ps = tok.next().ok_or_else(|| at("slew needs a value in ps"))?;
                let ps: f64 = ps.parse().map_err(|e| at(&format!("bad slew: {e}")))?;
                Edit::SetInputSlew { slew: ps * 1e-12 }
            }
            other => return Err(at(&format!("unknown edit {other:?}"))),
        };
        if tok.next().is_some() {
            return Err(at("trailing tokens"));
        }
        edits.push(edit);
    }
    Ok(edits)
}

pub(crate) fn commit_eq(a: Option<NetCommit>, b: Option<NetCommit>) -> bool {
    match (a, b) {
        (None, None) => true,
        (Some((aa, asl, ap)), Some((ba, bsl, bp))) => {
            aa.to_bits() == ba.to_bits() && asl.to_bits() == bsl.to_bits() && ap == bp
        }
        _ => false,
    }
}

impl<'m> StaEngine<'m> {
    /// The seed slew the incremental flow analyzes at (see
    /// [`StaEngine::set_input_slew`]).
    pub fn input_slew(&self) -> f64 {
        self.input_slew
    }

    /// Statistics of the last [`StaEngine::run_incremental`] call.
    pub fn incremental_stats(&self) -> IncrementalStats {
        self.last_incremental
    }

    /// Sets the seed slew at the primary inputs for the incremental
    /// flow. Takes effect at the next [`StaEngine::run_incremental`];
    /// no caches are invalidated (arc caches are keyed by exact slew,
    /// so entries at other slews stay valid).
    ///
    /// # Errors
    ///
    /// Returns [`NumError::InvalidInput`] for a negative or non-finite
    /// slew.
    pub fn set_input_slew(&mut self, slew: f64) -> Result<()> {
        if !slew.is_finite() || slew < 0.0 {
            return Err(NumError::InvalidInput {
                context: "StaEngine::set_input_slew",
                detail: format!("input slew {slew}"),
            });
        }
        self.input_slew = slew;
        Ok(())
    }

    /// Sets the explicit grounded load at `net` to an absolute value,
    /// updating the owning stage's baked node load and marking it
    /// dirty. The owning stage is the net's driver when it has one, or
    /// — for an internal channel node such as a NAND stack's mid net —
    /// the stage whose channel-connected component contains it (a cold
    /// partition bakes explicit caps into *every* stage node, not just
    /// driven outputs). A load on a net in no stage (primary input) is
    /// recorded in the netlist only, exactly as in a cold partition.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::InvalidInput`] for a rail, an out-of-range
    /// net, a negative/non-finite value, or (hard error, like
    /// [`StaEngine::resize_device`]) an owning stage whose node naming
    /// disagrees with the netlist.
    pub fn set_net_load(&mut self, net: NetId, cap: f64) -> Result<()> {
        if self.netlist.is_rail(net) {
            return Err(NumError::InvalidInput {
                context: "StaEngine::set_net_load",
                detail: "cannot load a supply rail".to_string(),
            });
        }
        let delta = cap - self.netlist.cap(net);
        self.netlist.set_cap(net, cap)?;
        let owner = self.graph.driver_of(net).or_else(|| {
            self.netlist
                .devices()
                .iter()
                .position(|d| d.src == net || d.snk == net)
                .and_then(|di| self.graph.stage_of_device(di))
        });
        if let Some(driver) = owner {
            let name = self.netlist.net_name(net).to_string();
            let dpart = &mut self.graph.partitions_mut()[driver.0];
            let node = dpart
                .stage
                .node_by_name(&name)
                .ok_or_else(|| NumError::InvalidInput {
                    context: "StaEngine::set_net_load",
                    detail: format!(
                        "net {name:?} has driver stage {} but no node of that name in it \
                         — stage graph and netlist disagree",
                        driver.0
                    ),
                })?;
            dpart.stage.add_load(node, delta);
            self.delay_cache.retain(|k| k.stage != driver.0);
            self.slew_cache.retain(|k| k.stage != driver.0);
            self.dirty.insert(driver.0);
            self.dirty_corners.insert(driver.0);
        }
        Ok(())
    }

    /// Applies a batch of edits in order, accumulating dirty stages for
    /// the next [`StaEngine::run_incremental`].
    ///
    /// # Errors
    ///
    /// Stops at and returns the first failing edit; earlier edits in
    /// the batch remain applied.
    pub fn apply_edits(&mut self, edits: &[Edit]) -> Result<()> {
        for &e in edits {
            match e {
                Edit::ResizeDevice { device, w } => self.resize_device(device, w)?,
                Edit::SetNetLoad { net, cap } => self.set_net_load(net, cap)?,
                Edit::SetInputSlew { slew } => self.set_input_slew(slew)?,
            }
        }
        Ok(())
    }

    /// Incremental analysis: re-evaluates only the fanout cone of the
    /// stages dirtied since the last run, early-stopping at nets whose
    /// recommitted state is bitwise-unchanged, and returns a report
    /// bitwise-identical to a cold [`StaEngine::run_with_slew`] at the
    /// current input slew — at any worker count.
    ///
    /// The first call (or a call with a different evaluator than the
    /// committed book's) performs a full propagation and seeds the
    /// book. Inspect what happened via [`StaEngine::incremental_stats`]
    /// and the `sta.incremental.*` counters.
    ///
    /// # Errors
    ///
    /// Propagates evaluator failures; the committed book and the dirty
    /// set are left untouched on error, so the next call retries.
    pub fn run_incremental(&mut self, evaluator: &dyn StageEvaluator) -> Result<TimingReport> {
        let _span = qwm_obs::span!("sta.run_incremental");
        let _trace = qwm_obs::trace::TraceGuard::enter("sta.run_incremental");
        qwm_obs::counter!("sta.incremental.runs").incr();
        let evals_before = self.total_evaluations();
        let needs_full = match &self.committed {
            None => true,
            Some(c) => c.evaluator != evaluator.name(),
        };
        if needs_full {
            let book = self.propagate_slew_book(evaluator, self.input_slew)?;
            let report = self.report_from_book(&book, evals_before, evaluator)?;
            self.committed = Some(CommittedBook {
                evaluator: evaluator.name(),
                input_slew: self.input_slew,
                book,
            });
            self.dirty.clear();
            self.last_incremental = IncrementalStats {
                full_run: true,
                dirty_stages: self.graph.len(),
                evaluated_stages: self.graph.len(),
                reused_arcs: 0,
                early_stop_nets: 0,
                evaluations: report.evaluations,
            };
            qwm_obs::counter!("sta.incremental.full_runs").incr();
            return Ok(report);
        }
        let committed = self.committed.as_ref().expect("committed book");
        let old_book = &committed.book;
        let seed_slew = self.input_slew;
        let slew_changed = committed.input_slew.to_bits() != seed_slew.to_bits();

        // Seed set: explicitly dirtied stages, plus — when the seed
        // slew changed — every stage whose launch point in the old book
        // had no positive-arrival fanin (those stages launch from the
        // seed slew itself: primary-input readers, input-less stages,
        // zero-arrival corners).
        let mut seeds: std::collections::BTreeSet<usize> = self.dirty.clone();
        if slew_changed {
            for (i, p) in self.graph.partitions().iter().enumerate() {
                let max_arr = p
                    .input_nets
                    .iter()
                    .map(|n| old_book[n.0].map_or(0.0, |(a, _, _)| a))
                    .fold(0.0_f64, f64::max);
                if max_arr <= 0.0 {
                    seeds.insert(i);
                }
            }
        }

        let cone = self.graph.fanout_cone(seeds.iter().copied());
        self.last_incremental = IncrementalStats {
            full_run: false,
            dirty_stages: cone.len(),
            evaluated_stages: 0,
            reused_arcs: 0,
            early_stop_nets: 0,
            evaluations: 0,
        };
        if cone.is_empty() && !slew_changed {
            // Nothing to do: the committed book is the answer.
            let book = old_book.clone();
            let report = self.report_from_book(&book, evals_before, evaluator)?;
            self.dirty.clear();
            return Ok(report);
        }

        // New book starts from the committed state; primary-input seed
        // entries (the ones the seed, not a stage, committed) are
        // re-seeded at the current slew.
        let new_book: Vec<Mutex<Option<NetCommit>>> =
            old_book.iter().map(|&s| Mutex::new(s)).collect();
        let changed: Vec<AtomicBool> = (0..old_book.len())
            .map(|_| AtomicBool::new(false))
            .collect();
        let mut is_pi = vec![false; old_book.len()];
        for &pi in self.netlist.primary_inputs() {
            is_pi[pi.0] = true;
            let seeded = Some((0.0, seed_slew, NO_PRED));
            let mut slot = new_book[pi.0].lock().expect("net book");
            if slot.is_none_or(|(_, _, p)| p == NO_PRED) && !commit_eq(*slot, seeded) {
                *slot = seeded;
                changed[pi.0].store(true, Ordering::Relaxed);
            }
        }

        let in_seeds = {
            let mut v = vec![false; self.graph.len()];
            for &s in &seeds {
                v[s] = true;
            }
            v
        };
        let succs = self.graph.stage_dependencies();
        let lev = Levelizer::from_subgraph(&succs, &cone).map_err(|e| NumError::InvalidInput {
            context: "StaEngine::run_incremental",
            detail: e.to_string(),
        })?;
        let evaluated = AtomicUsize::new(0);
        let arcs_requested = AtomicUsize::new(0);
        let early_stops = AtomicUsize::new(0);
        // Trace stage records carry the *global* stage id; the level map
        // is indexed by the cone-local id the sub-levelizer assigned.
        let level_of = crate::engine::trace_levels(&lev);
        qwm_exec::run_dag(self.threads(), &lev, |_w, local| -> Result<()> {
            let gid = cone[local];
            let _stage = level_of.as_ref().map(|lv| {
                qwm_obs::trace::TraceGuard::enter_stage(
                    "sta.stage",
                    gid as u64,
                    lv.get(local).copied().unwrap_or(0),
                )
            });
            let part = self.graph.stage(StageId(gid));
            let triggered = in_seeds[gid]
                || part
                    .input_nets
                    .iter()
                    .any(|n| changed[n.0].load(Ordering::Relaxed));
            if !triggered {
                // Fanin state is bitwise what the committed book was
                // computed from: the old commits stand.
                early_stops.fetch_add(part.output_nets.len(), Ordering::Relaxed);
                return Ok(());
            }
            evaluated.fetch_add(1, Ordering::Relaxed);
            // Identical launch fold to the cold propagation.
            let (launch, launch_slew) = part
                .input_nets
                .iter()
                .map(|n| match *new_book[n.0].lock().expect("net book") {
                    Some((a, sl, _)) => (a, sl),
                    None => (0.0, seed_slew),
                })
                .fold(
                    (0.0_f64, seed_slew),
                    |acc, (a, s)| {
                        if a > acc.0 {
                            (a, s)
                        } else {
                            acc
                        }
                    },
                );
            arcs_requested.fetch_add(part.output_nets.len(), Ordering::Relaxed);
            for (pos, &net) in part.output_nets.iter().enumerate() {
                let m = self.stage_output_timing(evaluator, StageId(gid), pos, launch_slew)?;
                let arr = launch + m.delay;
                // Replicate the cold commit rule exactly: a seeded
                // primary-input entry only loses to a later arrival;
                // every other net has this stage as its sole committer.
                let candidate = if is_pi[net.0] && arr <= 0.0 {
                    Some((0.0, seed_slew, NO_PRED))
                } else {
                    Some((arr, m.slew, gid))
                };
                let mut slot = new_book[net.0].lock().expect("net book");
                if commit_eq(*slot, candidate) {
                    early_stops.fetch_add(1, Ordering::Relaxed);
                } else {
                    *slot = candidate;
                    changed[net.0].store(true, Ordering::Relaxed);
                }
            }
            Ok(())
        })
        .map_err(|(_, e)| e)?;

        let book: Vec<Option<NetCommit>> = new_book
            .into_iter()
            .map(|slot| slot.into_inner().expect("net book"))
            .collect();
        let report = self.report_from_book(&book, evals_before, evaluator)?;
        let stats = IncrementalStats {
            full_run: false,
            dirty_stages: cone.len(),
            evaluated_stages: evaluated.load(Ordering::Relaxed),
            reused_arcs: arcs_requested.load(Ordering::Relaxed) - report.evaluations,
            early_stop_nets: early_stops.load(Ordering::Relaxed),
            evaluations: report.evaluations,
        };
        self.last_incremental = stats;
        qwm_obs::counter!("sta.incremental.dirty_stages").add(stats.dirty_stages as u64);
        qwm_obs::counter!("sta.incremental.evaluated_stages").add(stats.evaluated_stages as u64);
        qwm_obs::counter!("sta.incremental.reused_arcs").add(stats.reused_arcs as u64);
        qwm_obs::counter!("sta.incremental.early_stop_nets").add(stats.early_stop_nets as u64);
        self.committed = Some(CommittedBook {
            evaluator: evaluator.name(),
            input_slew: seed_slew,
            book,
        });
        self.dirty.clear();
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::StaEngine;
    use crate::evaluator::{ElmoreEvaluator, QwmEvaluator};
    use crate::graph::inverter_chain;
    use qwm_circuit::waveform::TransitionKind;
    use qwm_device::{analytic_models, Technology};

    fn reports_bitwise_eq(a: &TimingReport, b: &TimingReport) -> bool {
        let key = |r: &TimingReport| {
            let mut arr: Vec<(usize, u64)> =
                r.arrivals.iter().map(|(n, a)| (n.0, a.to_bits())).collect();
            arr.sort_unstable();
            let mut sl: Vec<(usize, u64)> =
                r.slews.iter().map(|(n, s)| (n.0, s.to_bits())).collect();
            sl.sort_unstable();
            (
                arr,
                sl,
                r.worst.map(|(n, a)| (n.0, a.to_bits())),
                r.critical_path.clone(),
            )
        };
        key(a) == key(b)
    }

    #[test]
    fn first_incremental_run_is_a_full_run() {
        let tech = Technology::cmosp35();
        let models = analytic_models(&tech);
        let nl = inverter_chain(&tech, 4, 10e-15);
        let mut engine = StaEngine::new(nl, &models, TransitionKind::Fall).unwrap();
        engine.set_input_slew(20e-12).unwrap();
        let r = engine.run_incremental(&QwmEvaluator::default()).unwrap();
        let stats = engine.incremental_stats();
        assert!(stats.full_run);
        assert_eq!(stats.evaluations, 4);
        let cold = engine
            .run_with_slew(&QwmEvaluator::default(), 20e-12)
            .unwrap();
        assert!(reports_bitwise_eq(&r, &cold));
    }

    #[test]
    fn no_edits_reevaluates_nothing() {
        let tech = Technology::cmosp35();
        let models = analytic_models(&tech);
        let nl = inverter_chain(&tech, 4, 10e-15);
        let mut engine = StaEngine::new(nl, &models, TransitionKind::Fall).unwrap();
        let r1 = engine.run_incremental(&QwmEvaluator::default()).unwrap();
        let r2 = engine.run_incremental(&QwmEvaluator::default()).unwrap();
        let stats = engine.incremental_stats();
        assert!(!stats.full_run);
        assert_eq!(stats.dirty_stages, 0);
        assert_eq!(stats.evaluated_stages, 0);
        assert_eq!(stats.evaluations, 0);
        assert!(reports_bitwise_eq(&r1, &r2));
    }

    #[test]
    fn resize_reevaluates_only_the_cone() {
        let tech = Technology::cmosp35();
        let models = analytic_models(&tech);
        let nl = inverter_chain(&tech, 6, 10e-15);
        let mut engine = StaEngine::new(nl, &models, TransitionKind::Fall).unwrap();
        let _ = engine.run_incremental(&QwmEvaluator::default()).unwrap();
        // Upsize MN2 (middle inverter): its stage plus the fanout-load
        // driver go dirty; the cone is the chain suffix from the driver.
        engine
            .apply_edits(&[Edit::ResizeDevice {
                device: 4,
                w: 4.0 * tech.w_min,
            }])
            .unwrap();
        let incr = engine.run_incremental(&QwmEvaluator::default()).unwrap();
        let stats = engine.incremental_stats();
        assert!(!stats.full_run);
        // Driver of the resized gate is stage 1 → cone = stages 1..=5.
        assert_eq!(stats.dirty_stages, 5);
        assert!(stats.evaluated_stages <= stats.dirty_stages);
        assert!(stats.evaluations >= 2);
        // Identical to a cold run on an identically edited fresh engine.
        let mut fresh =
            StaEngine::new(engine.netlist().clone(), &models, TransitionKind::Fall).unwrap();
        fresh.resize_device(4, 4.0 * tech.w_min).unwrap();
        let cold = fresh.run_with_slew(&QwmEvaluator::default(), 0.0).unwrap();
        assert!(reports_bitwise_eq(&incr, &cold));
    }

    #[test]
    fn same_width_resize_early_stops_downstream() {
        let tech = Technology::cmosp35();
        let models = analytic_models(&tech);
        let nl = inverter_chain(&tech, 6, 10e-15);
        let mut engine = StaEngine::new(nl, &models, TransitionKind::Fall).unwrap();
        let r1 = engine.run_incremental(&ElmoreEvaluator).unwrap();
        // "Resize" MN2 to its existing width: caches are invalidated and
        // the stage re-evaluates, but every recommit is bitwise-equal,
        // so propagation stops at the cone seeds' outputs.
        let w = engine.netlist().devices()[4].geom.w;
        engine.resize_device(4, w).unwrap();
        let r2 = engine.run_incremental(&ElmoreEvaluator).unwrap();
        let stats = engine.incremental_stats();
        assert!(reports_bitwise_eq(&r1, &r2));
        // Only the two seed stages re-evaluate; the other three in-cone
        // stages never trigger.
        assert_eq!(stats.evaluated_stages, 2);
        assert!(stats.early_stop_nets >= 3);
    }

    #[test]
    fn set_net_load_marks_driver_dirty_and_matches_cold() {
        let tech = Technology::cmosp35();
        let models = analytic_models(&tech);
        let nl = inverter_chain(&tech, 5, 10e-15);
        let mut engine = StaEngine::new(nl, &models, TransitionKind::Fall).unwrap();
        let _ = engine.run_incremental(&QwmEvaluator::default()).unwrap();
        let n3 = engine.netlist().find_net("n3").unwrap();
        engine.set_net_load(n3, 25e-15).unwrap();
        let incr = engine.run_incremental(&QwmEvaluator::default()).unwrap();
        let stats = engine.incremental_stats();
        assert!(!stats.full_run);
        // Driver of n3 is stage 2 → cone = stages 2..=4.
        assert_eq!(stats.dirty_stages, 3);
        let fresh =
            StaEngine::new(engine.netlist().clone(), &models, TransitionKind::Fall).unwrap();
        let cold = fresh.run_with_slew(&QwmEvaluator::default(), 0.0).unwrap();
        assert!(reports_bitwise_eq(&incr, &cold));
        // Loading an undriven net is netlist-only, not an error.
        let input = engine.netlist().find_net("in").unwrap();
        engine.set_net_load(input, 5e-15).unwrap();
        assert_eq!(engine.incremental_stats().dirty_stages, 3);
        // Rails are rejected.
        let vdd = engine.netlist().vdd();
        assert!(engine.set_net_load(vdd, 1e-15).is_err());
    }

    #[test]
    fn input_slew_edit_retimes_and_matches_cold() {
        let tech = Technology::cmosp35();
        let models = analytic_models(&tech);
        let nl = inverter_chain(&tech, 4, 10e-15);
        let mut engine = StaEngine::new(nl, &models, TransitionKind::Fall).unwrap();
        engine.set_input_slew(10e-12).unwrap();
        let _ = engine.run_incremental(&QwmEvaluator::default()).unwrap();
        engine
            .apply_edits(&[Edit::SetInputSlew { slew: 45e-12 }])
            .unwrap();
        let incr = engine.run_incremental(&QwmEvaluator::default()).unwrap();
        let fresh =
            StaEngine::new(engine.netlist().clone(), &models, TransitionKind::Fall).unwrap();
        let cold = fresh
            .run_with_slew(&QwmEvaluator::default(), 45e-12)
            .unwrap();
        assert!(reports_bitwise_eq(&incr, &cold));
        assert!(engine.set_input_slew(-1.0).is_err());
        assert!(engine.set_input_slew(f64::NAN).is_err());
    }

    #[test]
    fn evaluator_switch_forces_full_run() {
        let tech = Technology::cmosp35();
        let models = analytic_models(&tech);
        let nl = inverter_chain(&tech, 3, 10e-15);
        let mut engine = StaEngine::new(nl, &models, TransitionKind::Fall).unwrap();
        let _ = engine.run_incremental(&ElmoreEvaluator).unwrap();
        assert!(engine.incremental_stats().full_run);
        let _ = engine.run_incremental(&QwmEvaluator::default()).unwrap();
        assert!(
            engine.incremental_stats().full_run,
            "a different evaluator cannot reuse the committed book"
        );
    }
}
