//! Minimal Liberty (.lib) emission and parsing for characterized cells.
//!
//! The industry hands pre-characterized timing around as Liberty
//! libraries; this module writes the [`NldmTable`]s produced by
//! [`crate::nldm`] as `cell`/`pin`/`timing` groups with
//! `cell_fall`/`fall_transition` (or rise) NLDM tables, and reads its own
//! subset back — enough for round-tripping characterization results and
//! for feeding downstream tools that speak Liberty.
//!
//! The dialect is deliberately small: one `lu_table_template` per table
//! shape, `index_1` = input slew \[ns\], `index_2` = load \[pF\],
//! `values` row-major over slew. Times are written in nanoseconds and
//! capacitances in picofarads, the customary Liberty units.

use crate::nldm::NldmTable;
use qwm_circuit::waveform::TransitionKind;
use qwm_num::{NumError, Result};
use std::collections::HashMap;
use std::fmt::Write as _;

/// One timing arc destined for a Liberty `timing()` group.
#[derive(Debug, Clone)]
pub struct LibertyArc {
    /// Related (switching) pin name.
    pub related_pin: String,
    /// Transition this arc describes at the output.
    pub direction: TransitionKind,
    /// The characterized surface.
    pub table: NldmTable,
}

/// A cell to be emitted: output pin name plus its arcs.
#[derive(Debug, Clone)]
pub struct LibertyCell {
    /// Cell name.
    pub name: String,
    /// Output pin name.
    pub output_pin: String,
    /// Timing arcs into the output pin.
    pub arcs: Vec<LibertyArc>,
}

fn fmt_axis_ns(vals: &[f64]) -> String {
    vals.iter()
        .map(|v| format!("{:.6}", v * 1e9))
        .collect::<Vec<_>>()
        .join(", ")
}

fn fmt_axis_pf(vals: &[f64]) -> String {
    vals.iter()
        .map(|v| format!("{:.6}", v * 1e12))
        .collect::<Vec<_>>()
        .join(", ")
}

/// Serializes a library of cells in the Liberty subset described in the
/// module docs.
///
/// # Errors
///
/// Returns [`NumError::InvalidInput`] for a library without cells or a
/// cell without arcs.
pub fn write_liberty(library_name: &str, cells: &[LibertyCell]) -> Result<String> {
    if cells.is_empty() || cells.iter().any(|c| c.arcs.is_empty()) {
        return Err(NumError::InvalidInput {
            context: "write_liberty",
            detail: "library needs at least one cell with arcs".to_string(),
        });
    }
    let mut out = String::new();
    let _ = writeln!(out, "library ({library_name}) {{");
    let _ = writeln!(out, "  time_unit : \"1ns\";");
    let _ = writeln!(out, "  capacitive_load_unit (1, pf);");
    // One template per distinct table shape.
    let mut templates: HashMap<(usize, usize), String> = HashMap::new();
    for c in cells {
        for a in &c.arcs {
            let shape = (a.table.slews.len(), a.table.loads.len());
            let name = format!("tmpl_{}x{}", shape.0, shape.1);
            templates.entry(shape).or_insert(name);
        }
    }
    let mut tnames: Vec<_> = templates.iter().collect();
    tnames.sort_by_key(|(shape, _)| **shape);
    for (&(ns, nl), name) in &tnames {
        let _ = writeln!(out, "  lu_table_template ({name}) {{");
        let _ = writeln!(out, "    variable_1 : input_net_transition;");
        let _ = writeln!(out, "    variable_2 : total_output_net_capacitance;");
        let _ = writeln!(out, "    index_1 (\"{}\");", vec!["0"; ns].join(", "));
        let _ = writeln!(out, "    index_2 (\"{}\");", vec!["0"; nl].join(", "));
        let _ = writeln!(out, "  }}");
    }
    for c in cells {
        let _ = writeln!(out, "  cell ({}) {{", c.name);
        let _ = writeln!(out, "    pin ({}) {{", c.output_pin);
        let _ = writeln!(out, "      direction : output;");
        for a in &c.arcs {
            let shape = (a.table.slews.len(), a.table.loads.len());
            let tmpl = &templates[&shape];
            let (dkey, skey) = match a.direction {
                TransitionKind::Fall => ("cell_fall", "fall_transition"),
                TransitionKind::Rise => ("cell_rise", "rise_transition"),
            };
            let _ = writeln!(out, "      timing () {{");
            let _ = writeln!(out, "        related_pin : \"{}\";", a.related_pin);
            for (key, grid) in [(dkey, &a.table.delay), (skey, &a.table.out_slew)] {
                let _ = writeln!(out, "        {key} ({tmpl}) {{");
                let _ = writeln!(
                    out,
                    "          index_1 (\"{}\");",
                    fmt_axis_ns(&a.table.slews)
                );
                let _ = writeln!(
                    out,
                    "          index_2 (\"{}\");",
                    fmt_axis_pf(&a.table.loads)
                );
                let _ = writeln!(out, "          values ( \\");
                for (i, row) in grid.iter().enumerate() {
                    let line = row
                        .iter()
                        .map(|v| format!("{:.6}", v * 1e9))
                        .collect::<Vec<_>>()
                        .join(", ");
                    let cont = if i + 1 == grid.len() { " );" } else { ", \\" };
                    let _ = writeln!(out, "            \"{line}\"{cont}");
                }
                let _ = writeln!(out, "        }}");
            }
            let _ = writeln!(out, "      }}");
        }
        let _ = writeln!(out, "    }}");
        let _ = writeln!(out, "  }}");
    }
    let _ = writeln!(out, "}}");
    Ok(out)
}

/// Extracts every quoted, comma-separated number list after `key (` in a
/// group body — the workhorse of the subset parser.
fn parse_number_lists(body: &str) -> Result<Vec<Vec<f64>>> {
    let mut lists = Vec::new();
    let mut rest = body;
    while let Some(q0) = rest.find('"') {
        let after = &rest[q0 + 1..];
        let q1 = after.find('"').ok_or_else(|| NumError::InvalidInput {
            context: "liberty::parse_number_lists",
            detail: "unterminated quote".to_string(),
        })?;
        let chunk = &after[..q1];
        let nums: std::result::Result<Vec<f64>, _> =
            chunk.split(',').map(|t| t.trim().parse::<f64>()).collect();
        if let Ok(nums) = nums {
            if !nums.is_empty() {
                lists.push(nums);
            }
        }
        rest = &after[q1 + 1..];
    }
    Ok(lists)
}

/// Finds the body of `key (name…) { … }` starting at `from`, returning
/// `(body, end_index)` with brace matching.
fn group_body(text: &str, key: &str, from: usize) -> Option<(String, usize)> {
    let idx = text[from..].find(key)? + from;
    let open = text[idx..].find('{')? + idx;
    let mut depth = 0usize;
    for (i, ch) in text[open..].char_indices() {
        match ch {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    return Some((text[open + 1..open + i].to_string(), open + i));
                }
            }
            _ => {}
        }
    }
    None
}

/// Reads back one table (`cell_fall`, `fall_transition`, …) from a
/// Liberty string produced by [`write_liberty`].
///
/// # Errors
///
/// Returns [`NumError::InvalidInput`] when the group or its numeric
/// content cannot be found.
pub fn read_table(text: &str, cell: &str, group_key: &str) -> Result<NldmTable> {
    let (cell_body, _) =
        group_body(text, &format!("cell ({cell})"), 0).ok_or_else(|| NumError::InvalidInput {
            context: "liberty::read_table",
            detail: format!("cell {cell} not found"),
        })?;
    let (grp, _) = group_body(&cell_body, group_key, 0).ok_or_else(|| NumError::InvalidInput {
        context: "liberty::read_table",
        detail: format!("group {group_key} not found"),
    })?;
    let lists = parse_number_lists(&grp)?;
    if lists.len() < 3 {
        return Err(NumError::InvalidInput {
            context: "liberty::read_table",
            detail: format!("expected index_1, index_2 and values; got {}", lists.len()),
        });
    }
    let slews: Vec<f64> = lists[0].iter().map(|v| v * 1e-9).collect();
    let loads: Vec<f64> = lists[1].iter().map(|v| v * 1e-12).collect();
    let rows: Vec<Vec<f64>> = lists[2..]
        .iter()
        .map(|r| r.iter().map(|v| v * 1e-9).collect())
        .collect();
    if rows.len() != slews.len() || rows.iter().any(|r| r.len() != loads.len()) {
        return Err(NumError::InvalidInput {
            context: "liberty::read_table",
            detail: "values shape does not match the axes".to_string(),
        });
    }
    Ok(NldmTable {
        slews,
        loads,
        delay: rows.clone(),
        out_slew: rows,
    })
}

/// Characterizes both transitions of a stage output with QWM and packs
/// them as a [`LibertyCell`] (one fall and one rise arc, related to the
/// given pin name).
///
/// # Errors
///
/// Propagates characterization failures.
#[allow(clippy::too_many_arguments)] // a characterization job is inherently wide
pub fn characterize_cell(
    cell_name: &str,
    output_pin: &str,
    related_pin: &str,
    stage: &qwm_circuit::LogicStage,
    models: &qwm_device::model::ModelSet,
    output: qwm_circuit::NodeId,
    slews: Vec<f64>,
    loads: Vec<f64>,
    config: &qwm_core::evaluate::QwmConfig,
) -> qwm_num::Result<LibertyCell> {
    let mut arcs = Vec::new();
    for direction in [TransitionKind::Fall, TransitionKind::Rise] {
        let table = NldmTable::characterize(
            stage,
            models,
            output,
            direction,
            slews.clone(),
            loads.clone(),
            config,
        )?;
        arcs.push(LibertyArc {
            related_pin: related_pin.to_string(),
            direction,
            table,
        });
    }
    Ok(LibertyCell {
        name: cell_name.to_string(),
        output_pin: output_pin.to_string(),
        arcs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use qwm_circuit::cells;
    use qwm_core::evaluate::QwmConfig;
    use qwm_device::{analytic_models, Technology};

    fn sample_cell() -> (String, NldmTable) {
        let tech = Technology::cmosp35();
        let models = analytic_models(&tech);
        let g = cells::nand(&tech, 2, 2e-15).unwrap();
        let out = g.node_by_name("out").unwrap();
        let table = NldmTable::characterize(
            &g,
            &models,
            out,
            TransitionKind::Fall,
            vec![10e-12, 40e-12],
            vec![4e-15, 20e-15],
            &QwmConfig::default(),
        )
        .unwrap();
        let lib = write_liberty(
            "qwm_demo",
            &[LibertyCell {
                name: "NAND2X1".to_string(),
                output_pin: "Y".to_string(),
                arcs: vec![LibertyArc {
                    related_pin: "A".to_string(),
                    direction: TransitionKind::Fall,
                    table: table.clone(),
                }],
            }],
        )
        .unwrap();
        (lib, table)
    }

    #[test]
    fn emitted_liberty_has_the_expected_groups() {
        let (lib, _) = sample_cell();
        for needle in [
            "library (qwm_demo)",
            "lu_table_template (tmpl_2x2)",
            "cell (NAND2X1)",
            "pin (Y)",
            "related_pin : \"A\"",
            "cell_fall (tmpl_2x2)",
            "fall_transition (tmpl_2x2)",
        ] {
            assert!(lib.contains(needle), "missing {needle:?} in:\n{lib}");
        }
        // Balanced braces.
        assert_eq!(
            lib.matches('{').count(),
            lib.matches('}').count(),
            "unbalanced braces"
        );
    }

    #[test]
    fn round_trip_preserves_delays() {
        let (lib, table) = sample_cell();
        let back = read_table(&lib, "NAND2X1", "cell_fall").unwrap();
        assert_eq!(back.slews.len(), table.slews.len());
        assert_eq!(back.loads.len(), table.loads.len());
        for (a, b) in back.slews.iter().zip(&table.slews) {
            assert!((a - b).abs() < 1e-15, "{a} vs {b}");
        }
        for i in 0..table.slews.len() {
            for j in 0..table.loads.len() {
                let (a, b) = (back.delay[i][j], table.delay[i][j]);
                assert!((a - b).abs() < 1e-14, "{a} vs {b}");
            }
        }
        // Interpolated queries agree too.
        let q1 = back.query(20e-12, 10e-15).delay;
        let q2 = table.query(20e-12, 10e-15).delay;
        assert!((q1 - q2).abs() < 1e-14);
    }

    #[test]
    fn parser_rejects_missing_groups() {
        let (lib, _) = sample_cell();
        assert!(read_table(&lib, "NOPE", "cell_fall").is_err());
        assert!(read_table(&lib, "NAND2X1", "cell_rise").is_err());
        assert!(read_table("library (x) {}", "c", "cell_fall").is_err());
    }

    #[test]
    fn characterize_cell_builds_both_arcs() {
        let tech = Technology::cmosp35();
        let models = analytic_models(&tech);
        let g = cells::inverter(&tech, 2e-15).unwrap();
        let out = g.node_by_name("out").unwrap();
        let cell = characterize_cell(
            "INVX1",
            "Y",
            "A",
            &g,
            &models,
            out,
            vec![10e-12, 40e-12],
            vec![4e-15, 20e-15],
            &QwmConfig::default(),
        )
        .unwrap();
        assert_eq!(cell.arcs.len(), 2);
        let lib = write_liberty("lib", &[cell]).unwrap();
        assert!(lib.contains("cell_fall"));
        assert!(lib.contains("cell_rise"));
        assert!(lib.contains("rise_transition"));
        // Rise arcs are slower than fall arcs for wp = 2·wn at these
        // mobility ratios.
        let fall = read_table(&lib, "INVX1", "cell_fall").unwrap();
        let rise = read_table(&lib, "INVX1", "cell_rise").unwrap();
        assert!(rise.delay[0][0] > fall.delay[0][0]);
    }

    #[test]
    fn writer_validates_input() {
        assert!(write_liberty("x", &[]).is_err());
        let empty_cell = LibertyCell {
            name: "c".to_string(),
            output_pin: "y".to_string(),
            arcs: vec![],
        };
        assert!(write_liberty("x", &[empty_cell]).is_err());
    }
}
