//! NLDM-style cell characterization: delay/slew lookup tables over
//! (input slew × output load).
//!
//! The paper's introduction frames QWM against the classic flow where
//! "each logic stage corresponds to a gate, whose timing characteristics
//! can be pre-characterized". This module implements that flow — a
//! nonlinear delay model (NLDM) table per (stage, output, transition),
//! filled by any [`crate::evaluator::StageEvaluator`]-style engine and queried by bilinear
//! interpolation — both because a production timing library needs it and
//! because it lets us demonstrate *why the paper bothers*: tables work
//! for isolated gates but cannot capture stages whose load is not a
//! lumped capacitor (pass transistors, interconnect), where on-the-fly
//! QWM keeps its accuracy.

use crate::evaluator::sensitized_setup_with_slew;
use qwm_circuit::stage::{LogicStage, NodeId};
use qwm_circuit::waveform::{TimingMetrics, TransitionKind};
use qwm_core::evaluate::{evaluate, QwmConfig};
use qwm_device::model::ModelSet;
use qwm_num::{NumError, Result};

/// A characterized delay/slew surface for one (output, transition) arc
/// of a cell.
#[derive(Debug, Clone)]
pub struct NldmTable {
    /// Input-slew axis \[s\] (ascending).
    pub slews: Vec<f64>,
    /// Output-load axis \[F\] (ascending).
    pub loads: Vec<f64>,
    /// Delay grid, `delay[i_slew][i_load]` \[s\].
    pub delay: Vec<Vec<f64>>,
    /// Output-slew grid, same layout \[s\].
    pub out_slew: Vec<Vec<f64>>,
}

impl NldmTable {
    /// Characterizes `stage`'s `output` arc with QWM at every grid point.
    ///
    /// The stage's existing load at the output is treated as a floor;
    /// each grid point *adds* `loads[j]` of external capacitance.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::InvalidInput`] for empty/unsorted axes, and
    /// propagates evaluation failures.
    pub fn characterize(
        stage: &LogicStage,
        models: &ModelSet,
        output: NodeId,
        direction: TransitionKind,
        slews: Vec<f64>,
        loads: Vec<f64>,
        config: &QwmConfig,
    ) -> Result<Self> {
        if slews.is_empty() || loads.is_empty() {
            return Err(NumError::InvalidInput {
                context: "NldmTable::characterize",
                detail: "empty axis".to_string(),
            });
        }
        if slews.windows(2).any(|w| w[1] <= w[0]) || loads.windows(2).any(|w| w[1] <= w[0]) {
            return Err(NumError::InvalidInput {
                context: "NldmTable::characterize",
                detail: "axes must be strictly ascending".to_string(),
            });
        }
        let vdd = models.tech().vdd;
        let out_name = stage.node(output).name.clone();
        let mut delay = Vec::with_capacity(slews.len());
        let mut out_slew = Vec::with_capacity(slews.len());
        for &sl in &slews {
            let mut drow = Vec::with_capacity(loads.len());
            let mut srow = Vec::with_capacity(loads.len());
            for &cl in &loads {
                // Clone the stage and add the extra load at the output.
                let mut loaded = stage.clone();
                let node = loaded
                    .node_by_name(&out_name)
                    .expect("output exists in clone");
                loaded.add_load(node, cl);
                let (inputs, init, t_ref) =
                    sensitized_setup_with_slew(&loaded, models, node, direction, sl)?;
                let r = evaluate(&loaded, models, &inputs, &init, node, direction, config)?;
                let m = TimingMetrics {
                    delay: r.delay_50(vdd, t_ref).ok_or(NumError::InvalidInput {
                        context: "NldmTable::characterize",
                        detail: "no 50% crossing".to_string(),
                    })?,
                    slew: r.slew(vdd).ok_or(NumError::InvalidInput {
                        context: "NldmTable::characterize",
                        detail: "no 10/90% crossings".to_string(),
                    })?,
                };
                drow.push(m.delay);
                srow.push(m.slew);
            }
            delay.push(drow);
            out_slew.push(srow);
        }
        Ok(NldmTable {
            slews,
            loads,
            delay,
            out_slew,
        })
    }

    fn locate(axis: &[f64], v: f64) -> (usize, f64) {
        if axis.len() == 1 {
            return (0, 0.0);
        }
        let mut i = axis.partition_point(|&a| a <= v);
        i = i.clamp(1, axis.len() - 1);
        let (a, b) = (axis[i - 1], axis[i]);
        let t = ((v - a) / (b - a)).clamp(-0.5, 1.5); // mild extrapolation
        (i - 1, t)
    }

    fn lookup(grid: &[Vec<f64>], si: usize, st: f64, li: usize, lt: f64) -> f64 {
        let si1 = (si + 1).min(grid.len() - 1);
        let li1 = (li + 1).min(grid[0].len() - 1);
        let a = grid[si][li] * (1.0 - lt) + grid[si][li1] * lt;
        let b = grid[si1][li] * (1.0 - lt) + grid[si1][li1] * lt;
        a * (1.0 - st) + b * st
    }

    /// Bilinear delay/slew lookup with mild extrapolation at the table
    /// edges (as timing libraries do).
    pub fn query(&self, input_slew: f64, load: f64) -> TimingMetrics {
        let (si, st) = Self::locate(&self.slews, input_slew);
        let (li, lt) = Self::locate(&self.loads, load);
        TimingMetrics {
            delay: Self::lookup(&self.delay, si, st, li, lt),
            slew: Self::lookup(&self.out_slew, si, st, li, lt),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::{QwmEvaluator, StageEvaluator};
    use qwm_circuit::cells;
    use qwm_device::{analytic_models, Technology};

    fn nand3_table(tech: &Technology, models: &ModelSet) -> (LogicStage, NldmTable) {
        let g = cells::nand(tech, 3, 2e-15).unwrap();
        let out = g.node_by_name("out").unwrap();
        let t = NldmTable::characterize(
            &g,
            models,
            out,
            TransitionKind::Fall,
            vec![5e-12, 20e-12, 60e-12],
            vec![2e-15, 10e-15, 30e-15],
            &QwmConfig::default(),
        )
        .unwrap();
        (g, t)
    }

    #[test]
    fn table_is_monotone_in_both_axes() {
        let tech = Technology::cmosp35();
        let models = analytic_models(&tech);
        let (_g, t) = nand3_table(&tech, &models);
        // Delay grows with load at fixed slew.
        for row in &t.delay {
            assert!(row.windows(2).all(|w| w[1] > w[0]), "{row:?}");
        }
        // Output slew grows with load too.
        for row in &t.out_slew {
            assert!(row.windows(2).all(|w| w[1] > w[0]), "{row:?}");
        }
        // Delay grows (weakly) with input slew at fixed load.
        for j in 0..t.loads.len() {
            for i in 1..t.slews.len() {
                assert!(t.delay[i][j] >= t.delay[i - 1][j] * 0.98);
            }
        }
    }

    #[test]
    fn interpolated_query_matches_direct_evaluation() {
        let tech = Technology::cmosp35();
        let models = analytic_models(&tech);
        let (g, t) = nand3_table(&tech, &models);
        // Query at an off-grid point and compare with a fresh QWM run.
        let (sl, cl) = (12e-12, 18e-15);
        let m_table = t.query(sl, cl);
        let mut loaded = g.clone();
        let node = loaded.node_by_name("out").unwrap();
        loaded.add_load(node, cl);
        let m_direct = QwmEvaluator::default()
            .timing(&loaded, &models, node, TransitionKind::Fall, sl)
            .unwrap();
        let derr = (m_table.delay - m_direct.delay).abs() / m_direct.delay;
        assert!(derr < 0.08, "table {:?} vs direct {:?}", m_table, m_direct);
    }

    #[test]
    fn table_query_clamps_and_extrapolates_mildly() {
        let tech = Technology::cmosp35();
        let models = analytic_models(&tech);
        let (_g, t) = nand3_table(&tech, &models);
        let inside = t.query(20e-12, 10e-15);
        let below = t.query(1e-12, 1e-15);
        let above = t.query(100e-12, 50e-15);
        assert!(below.delay < inside.delay);
        assert!(above.delay > inside.delay);
        assert!(below.delay > 0.0);
    }

    #[test]
    fn characterization_validates_axes() {
        let tech = Technology::cmosp35();
        let models = analytic_models(&tech);
        let g = cells::inverter(&tech, 2e-15).unwrap();
        let out = g.node_by_name("out").unwrap();
        let bad = NldmTable::characterize(
            &g,
            &models,
            out,
            TransitionKind::Fall,
            vec![],
            vec![1e-15],
            &QwmConfig::default(),
        );
        assert!(bad.is_err());
        let unsorted = NldmTable::characterize(
            &g,
            &models,
            out,
            TransitionKind::Fall,
            vec![2e-12, 1e-12],
            vec![1e-15],
            &QwmConfig::default(),
        );
        assert!(unsorted.is_err());
    }
}
