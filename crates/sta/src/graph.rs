//! The stage graph: netlist → partitioned stages → timing DAG.
//!
//! Stages are extracted as channel-connected components
//! ([`qwm_circuit::partition`]); a directed timing edge runs from the
//! stage driving a net to every stage using that net as a gate input.
//! Arrival times propagate along this DAG (combinational circuits only —
//! cycles are rejected).

use qwm_circuit::netlist::{NetId, Netlist};
use qwm_circuit::partition::{partition, StagePartition};
use qwm_num::{NumError, Result};
use std::collections::HashMap;

/// Index of a stage within a [`StageGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StageId(pub usize);

/// The partitioned timing graph over a netlist.
#[derive(Debug)]
pub struct StageGraph {
    partitions: Vec<StagePartition>,
    /// Which stage drives each net (absent for primary inputs).
    driver: HashMap<NetId, StageId>,
    /// Stages whose inputs include each net.
    users: HashMap<NetId, Vec<StageId>>,
    /// Topological order of stage indices.
    topo: Vec<StageId>,
    /// Netlist device index → containing stage (devices never migrate
    /// between stages, so this is built once).
    device_stage: HashMap<usize, StageId>,
}

impl StageGraph {
    /// Partitions `netlist` and builds the DAG.
    ///
    /// # Errors
    ///
    /// Propagates partitioning failures; returns
    /// [`NumError::InvalidInput`] if the stage graph is cyclic (latch
    /// loops are out of scope for static timing).
    pub fn build(netlist: &Netlist) -> Result<Self> {
        let partitions = partition(netlist)?;
        let mut driver: HashMap<NetId, StageId> = HashMap::new();
        let mut users: HashMap<NetId, Vec<StageId>> = HashMap::new();
        for (i, p) in partitions.iter().enumerate() {
            for &net in &p.output_nets {
                driver.insert(net, StageId(i));
            }
            for &net in &p.input_nets {
                users.entry(net).or_default().push(StageId(i));
            }
        }

        // Kahn's algorithm over stage→stage edges.
        let n = partitions.len();
        let mut indeg = vec![0usize; n];
        let mut succ: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, p) in partitions.iter().enumerate() {
            for &net in &p.output_nets {
                for user in users.get(&net).into_iter().flatten() {
                    if user.0 != i {
                        succ[i].push(user.0);
                        indeg[user.0] += 1;
                    }
                }
            }
        }
        let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut topo = Vec::with_capacity(n);
        while let Some(i) = queue.pop() {
            topo.push(StageId(i));
            for &s in &succ[i] {
                indeg[s] -= 1;
                if indeg[s] == 0 {
                    queue.push(s);
                }
            }
        }
        if topo.len() != n {
            return Err(NumError::InvalidInput {
                context: "StageGraph::build",
                detail: "stage graph is cyclic (combinational loop)".to_string(),
            });
        }
        let mut device_stage = HashMap::new();
        for (i, p) in partitions.iter().enumerate() {
            for &d in &p.device_indices {
                device_stage.insert(d, StageId(i));
            }
        }
        Ok(StageGraph {
            partitions,
            driver,
            users,
            topo,
            device_stage,
        })
    }

    /// The partitions, indexable by [`StageId`].
    pub fn partitions(&self) -> &[StagePartition] {
        &self.partitions
    }

    /// Mutable partitions (incremental geometry updates; topology must
    /// not be altered).
    pub fn partitions_mut(&mut self) -> &mut [StagePartition] {
        &mut self.partitions
    }

    /// Stage lookup.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range id.
    pub fn stage(&self, id: StageId) -> &StagePartition {
        &self.partitions[id.0]
    }

    /// Which stage drives `net`, if any.
    pub fn driver_of(&self, net: NetId) -> Option<StageId> {
        self.driver.get(&net).copied()
    }

    /// Stages that read `net` as a gate input.
    pub fn users_of(&self, net: NetId) -> &[StageId] {
        self.users.get(&net).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Topological order of the stages.
    pub fn topo_order(&self) -> &[StageId] {
        &self.topo
    }

    /// Number of stages.
    pub fn len(&self) -> usize {
        self.partitions.len()
    }

    /// Whether the netlist produced no stages.
    pub fn is_empty(&self) -> bool {
        self.partitions.is_empty()
    }

    /// The stage containing netlist device `device_index`, if any.
    /// O(1): the index is precomputed at build time (a linear scan per
    /// resize used to make incremental sizing sweeps quadratic).
    pub fn stage_of_device(&self, device_index: usize) -> Option<StageId> {
        self.device_stage.get(&device_index).copied()
    }

    /// The static fanout cone of `seeds`: every stage reachable from a
    /// seed stage along dependency edges, seeds included, as a sorted
    /// set of stage indices. This is the upper bound of what an
    /// incremental re-timing may re-evaluate; early stop inside the
    /// cone can only shrink the actually-evaluated set.
    pub fn fanout_cone(&self, seeds: impl IntoIterator<Item = usize>) -> Vec<usize> {
        let succs = self.stage_dependencies();
        let mut in_cone = vec![false; self.partitions.len()];
        let mut frontier: Vec<usize> = Vec::new();
        for s in seeds {
            if s < in_cone.len() && !in_cone[s] {
                in_cone[s] = true;
                frontier.push(s);
            }
        }
        while let Some(s) = frontier.pop() {
            for &t in &succs[s] {
                if !in_cone[t] {
                    in_cone[t] = true;
                    frontier.push(t);
                }
            }
        }
        (0..in_cone.len()).filter(|&i| in_cone[i]).collect()
    }

    /// Stage→stage dependency edges as deduplicated successor lists
    /// (`succs[i]` holds every stage reading one of stage `i`'s output
    /// nets), the input the parallel runners levelize.
    pub fn stage_dependencies(&self) -> Vec<Vec<usize>> {
        let n = self.partitions.len();
        let mut succs = vec![Vec::new(); n];
        for (i, p) in self.partitions.iter().enumerate() {
            for &net in &p.output_nets {
                for user in self.users.get(&net).into_iter().flatten() {
                    if user.0 != i {
                        succs[i].push(user.0);
                    }
                }
            }
        }
        for s in &mut succs {
            s.sort_unstable();
            s.dedup();
        }
        succs
    }
}

/// Builds an inverter-chain netlist of the given depth — a standard
/// timing test structure (each inverter sized `wn`/`2·wn`).
pub fn inverter_chain(tech: &qwm_device::Technology, depth: usize, load: f64) -> Netlist {
    use qwm_circuit::stage::DeviceKind;
    use qwm_device::model::Geometry;
    let mut nl = Netlist::new();
    let (vdd, gnd) = (nl.vdd(), nl.gnd());
    let gn = Geometry::new(tech.w_min, tech.l_min);
    let gp = Geometry::new(2.0 * tech.w_min, tech.l_min);
    let mut prev = nl.net("in");
    nl.add_primary_input(prev);
    for i in 0..depth {
        let out = nl.net(&format!("n{}", i + 1));
        nl.add_transistor(format!("MN{i}"), DeviceKind::Nmos, prev, out, gnd, gn);
        nl.add_transistor(format!("MP{i}"), DeviceKind::Pmos, prev, vdd, out, gp);
        prev = out;
    }
    nl.add_cap(prev, load);
    nl.add_primary_output(prev);
    nl
}

/// Builds a randomized combinational DAG netlist of `stages` gates
/// (inverters and NAND2s) wired to randomly chosen earlier nets — the
/// workload for scheduler/determinism tests and scaling benches.
/// Acyclic by construction; fully determined by `seed`.
pub fn random_dag_netlist(tech: &qwm_device::Technology, stages: usize, seed: u64) -> Netlist {
    use qwm_circuit::stage::DeviceKind;
    use qwm_device::model::Geometry;
    use qwm_num::rng::Rng64;
    let mut rng = Rng64::seed_from_u64(seed);
    let mut nl = Netlist::new();
    let (vdd, gnd) = (nl.vdd(), nl.gnd());
    let mut nets: Vec<NetId> = Vec::new();
    for i in 0..3 {
        let pi = nl.net(&format!("in{i}"));
        nl.add_primary_input(pi);
        nets.push(pi);
    }
    // Gate inputs prefer recent nets so depth grows with size (a wide
    // shallow graph would undersell the dependency scheduler).
    let pick = |rng: &mut Rng64, nets: &[NetId]| {
        let window = nets.len().min(12);
        let base = nets.len() - window;
        nets[base + (rng.next_u64() as usize) % window]
    };
    let mut used: Vec<bool> = vec![false; 0];
    for i in 0..stages {
        let out = nl.net(&format!("g{i}"));
        let wn = tech.w_min * (1.0 + rng.unit());
        let gn = Geometry::new(wn, tech.l_min);
        let gp = Geometry::new(2.0 * wn, tech.l_min);
        let a = pick(&mut rng, &nets);
        let mark = |n: NetId, used: &mut Vec<bool>| {
            if used.len() <= n.0 {
                used.resize(n.0 + 1, false);
            }
            used[n.0] = true;
        };
        mark(a, &mut used);
        if rng.unit() < 0.6 {
            // Inverter.
            nl.add_transistor(format!("MN{i}"), DeviceKind::Nmos, a, out, gnd, gn);
            nl.add_transistor(format!("MP{i}"), DeviceKind::Pmos, a, vdd, out, gp);
        } else {
            // NAND2 with two distinct drivers where possible.
            let mut b = pick(&mut rng, &nets);
            if b == a {
                b = nets[(rng.next_u64() as usize) % nets.len()];
            }
            mark(b, &mut used);
            let mid = nl.net(&format!("g{i}_m"));
            nl.add_transistor(format!("MN{i}a"), DeviceKind::Nmos, a, out, mid, gn);
            nl.add_transistor(format!("MN{i}b"), DeviceKind::Nmos, b, mid, gnd, gn);
            nl.add_transistor(format!("MP{i}a"), DeviceKind::Pmos, a, vdd, out, gp);
            nl.add_transistor(format!("MP{i}b"), DeviceKind::Pmos, b, vdd, out, gp);
        }
        nl.add_cap(out, 2e-15 + 6e-15 * rng.unit());
        nets.push(out);
    }
    // Dangling gate outputs become primary outputs: every stage then has
    // a natural output and internal (e.g. NAND mid) nodes stay internal.
    for i in 0..stages {
        let out = nl.find_net(&format!("g{i}")).expect("gate output exists");
        if !used.get(out.0).copied().unwrap_or(false) {
            nl.add_primary_output(out);
        }
    }
    nl
}

#[cfg(test)]
mod tests {
    use super::*;
    use qwm_device::Technology;

    #[test]
    fn inverter_chain_topology() {
        let tech = Technology::cmosp35();
        let nl = inverter_chain(&tech, 5, 10e-15);
        let g = StageGraph::build(&nl).unwrap();
        assert_eq!(g.len(), 5);
        assert!(!g.is_empty());
        assert_eq!(g.topo_order().len(), 5);
        // Topological order respects the chain: driver of n1 precedes
        // driver of n2, etc.
        let pos: HashMap<usize, usize> = g
            .topo_order()
            .iter()
            .enumerate()
            .map(|(i, s)| (s.0, i))
            .collect();
        for i in 1..5 {
            let a = nl.find_net(&format!("n{i}")).unwrap();
            let b = nl.find_net(&format!("n{}", i + 1)).unwrap();
            let sa = g.driver_of(a).unwrap();
            let sb = g.driver_of(b).unwrap();
            assert!(
                pos[&sa.0] < pos[&sb.0],
                "stage for n{i} precedes n{}",
                i + 1
            );
        }
    }

    #[test]
    fn primary_input_has_no_driver() {
        let tech = Technology::cmosp35();
        let nl = inverter_chain(&tech, 2, 10e-15);
        let g = StageGraph::build(&nl).unwrap();
        let input = nl.find_net("in").unwrap();
        assert!(g.driver_of(input).is_none());
        assert_eq!(g.users_of(input).len(), 1);
    }

    #[test]
    fn cyclic_graph_rejected() {
        use qwm_circuit::stage::DeviceKind;
        use qwm_device::model::Geometry;
        let tech = Technology::cmosp35();
        let geom = Geometry::new(tech.w_min, tech.l_min);
        let gp = Geometry::new(2.0 * tech.w_min, tech.l_min);
        // Cross-coupled inverters (an SRAM cell): cyclic.
        let mut nl = Netlist::new();
        let (vdd, gnd) = (nl.vdd(), nl.gnd());
        let q = nl.net("q");
        let qb = nl.net("qb");
        nl.add_transistor("MN1", DeviceKind::Nmos, qb, q, gnd, geom);
        nl.add_transistor("MP1", DeviceKind::Pmos, qb, vdd, q, gp);
        nl.add_transistor("MN2", DeviceKind::Nmos, q, qb, gnd, geom);
        nl.add_transistor("MP2", DeviceKind::Pmos, q, vdd, qb, gp);
        assert!(StageGraph::build(&nl).is_err());
    }

    #[test]
    fn fanout_cone_of_chain_is_a_suffix() {
        let tech = Technology::cmosp35();
        let nl = inverter_chain(&tech, 5, 10e-15);
        let g = StageGraph::build(&nl).unwrap();
        // Seed at the stage driving n3: cone = drivers of n3, n4, n5.
        let n3 = nl.find_net("n3").unwrap();
        let seed = g.driver_of(n3).unwrap();
        let cone = g.fanout_cone([seed.0]);
        assert_eq!(cone.len(), 3);
        assert!(cone.contains(&seed.0));
        for i in 4..=5 {
            let net = nl.find_net(&format!("n{i}")).unwrap();
            assert!(cone.contains(&g.driver_of(net).unwrap().0));
        }
        // Empty seed set → empty cone; duplicate seeds don't double.
        assert!(g.fanout_cone([]).is_empty());
        assert_eq!(g.fanout_cone([seed.0, seed.0]).len(), 3);
    }

    #[test]
    fn stage_of_device_lookup() {
        let tech = Technology::cmosp35();
        let nl = inverter_chain(&tech, 3, 10e-15);
        let g = StageGraph::build(&nl).unwrap();
        for d in 0..nl.devices().len() {
            let s = g.stage_of_device(d).expect("every device has a stage");
            assert!(g.stage(s).device_indices.contains(&d));
        }
        assert!(g.stage_of_device(999).is_none());
    }
}
