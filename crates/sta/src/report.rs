//! Human-readable timing reports.
//!
//! Formats a [`TimingReport`] the way timing signoff tools do: a
//! critical-path table with per-stage increments plus a slack line
//! against an optional required time.

use crate::engine::TimingReport;
use crate::graph::StageGraph;
use qwm_circuit::netlist::Netlist;
use qwm_circuit::waveform::TransitionKind;
use std::fmt::Write as _;

fn direction_name(d: TransitionKind) -> &'static str {
    match d {
        TransitionKind::Fall => "fall",
        TransitionKind::Rise => "rise",
    }
}

/// Renders the critical path as a text table.
///
/// Each row shows the stage, its driven net, the stage's delay increment
/// and the cumulative arrival. When `required` is given, a final slack
/// line (`required − arrival`) is appended, negative slack flagged.
///
/// # Panics
///
/// Panics only if internal bookkeeping is inconsistent (a critical-path
/// stage without arrivals), which would be a bug.
pub fn format_report(
    report: &TimingReport,
    graph: &StageGraph,
    netlist: &Netlist,
    required: Option<f64>,
) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<8} {:<14} {:>12} {:>12}",
        "stage", "net", "incr[ps]", "arrival[ps]"
    );
    let _ = writeln!(out, "{}", "-".repeat(50));
    let mut prev_arrival = 0.0;
    for &sid in &report.critical_path {
        let part = graph.stage(sid);
        // The stage's worst (latest) output along the path.
        let (net, arrival) = part
            .output_nets
            .iter()
            .filter_map(|&n| report.arrivals.get(&n).map(|&a| (n, a)))
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
            .expect("critical-path stage has timed outputs");
        let _ = writeln!(
            out,
            "{:<8} {:<14} {:>12.2} {:>12.2}",
            format!("#{}", sid.0),
            netlist.net_name(net),
            (arrival - prev_arrival) * 1e12,
            arrival * 1e12
        );
        prev_arrival = arrival;
    }
    let _ = writeln!(out, "{}", "-".repeat(50));
    if let Some((net, arrival)) = report.worst {
        let _ = writeln!(
            out,
            "worst arrival {:.2} ps at {}",
            arrival * 1e12,
            netlist.net_name(net)
        );
        if let Some(req) = required {
            let slack = req - arrival;
            let flag = if slack < 0.0 { "  (VIOLATED)" } else { "" };
            let _ = writeln!(
                out,
                "slack {:+.2} ps vs required {:.2} ps{flag}",
                slack * 1e12,
                req * 1e12
            );
        }
    }
    if !report.degradations.is_empty() {
        let _ = writeln!(
            out,
            "degraded arcs: {} (fallback ladder engaged)",
            report.degradations.len()
        );
        for d in &report.degradations {
            let _ = writeln!(
                out,
                "  {} {} -> {}",
                d.output,
                direction_name(d.direction),
                d.landed.name()
            );
            for f in &d.failures {
                let _ = writeln!(out, "    {} failed: {}", f.rung.name(), f.error);
            }
        }
    }
    out
}

/// Renders a [`TimingReport`] as a canonical, machine-diffable snapshot
/// for golden-file regression tests.
///
/// Every line is deterministic: nets are sorted by name, floats are
/// printed with `{:?}` (shortest representation that round-trips the
/// exact bits), so the output is byte-identical across runs, worker
/// counts and platforms — any diff against a blessed golden file is a
/// real numeric change.
pub fn golden_report(report: &TimingReport, netlist: &Netlist) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "evaluations {}", report.evaluations);
    let _ = writeln!(out, "waveform_failures {}", report.waveform_failures);
    match report.worst {
        Some((net, arr)) => {
            let _ = writeln!(out, "worst {} {arr:?}", netlist.net_name(net));
        }
        None => {
            let _ = writeln!(out, "worst -");
        }
    }
    let path: Vec<String> = report
        .critical_path
        .iter()
        .map(|s| format!("#{}", s.0))
        .collect();
    let _ = writeln!(out, "critical_path {}", path.join(" "));
    let mut nets: Vec<qwm_circuit::netlist::NetId> = report.arrivals.keys().copied().collect();
    nets.sort_by_key(|&n| netlist.net_name(n));
    for net in nets {
        let arr = report.arrivals[&net];
        match report.slews.get(&net) {
            Some(slew) => {
                let _ = writeln!(out, "net {} {arr:?} {slew:?}", netlist.net_name(net));
            }
            None => {
                let _ = writeln!(out, "net {} {arr:?} -", netlist.net_name(net));
            }
        }
    }
    // Degradation provenance is appended only when present, so clean
    // runs render byte-identically to snapshots blessed before the
    // fallback ladder existed.
    if !report.degradations.is_empty() {
        let _ = writeln!(out, "degradations {}", report.degradations.len());
        for d in &report.degradations {
            let chain: Vec<String> = d
                .failures
                .iter()
                .map(|f| format!("{}: {}", f.rung.name(), f.error))
                .collect();
            let _ = writeln!(
                out,
                "degraded {} {} {} [{}]",
                d.output,
                direction_name(d.direction),
                d.landed.name(),
                chain.join("; ")
            );
        }
    }
    out
}

/// Renders a [`crate::corners::CornerReport`] as a canonical,
/// machine-diffable snapshot for golden-file regression tests.
///
/// Layout: the sweep's corner list, the worst corner, one per-net
/// provenance line (`net_worst <net> <corner> <arrival>` — the corner
/// that dominates that net, ties keeping sweep order), then each
/// corner's full [`golden_report`] body under a `corner <name>` header.
/// The per-corner bodies are the *exact* bytes a single-corner golden
/// render produces, so a one-corner sweep can be diffed against the
/// single-corner snapshot directly.
pub fn golden_corner_report(cr: &crate::corners::CornerReport, netlist: &Netlist) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "corners {}", cr.corners.join(","));
    match cr.worst {
        Some((c, net, arr)) => {
            let _ = writeln!(
                out,
                "worst_corner {} {} {arr:?}",
                cr.corners[c],
                netlist.net_name(net)
            );
        }
        None => {
            let _ = writeln!(out, "worst_corner -");
        }
    }
    let mut per_net = cr.per_net_worst_corner();
    per_net.sort_by_key(|&(n, _, _)| netlist.net_name(n));
    for (net, c, arr) in per_net {
        let _ = writeln!(
            out,
            "net_worst {} {} {arr:?}",
            netlist.net_name(net),
            cr.corners[c]
        );
    }
    for (name, report) in cr.corners.iter().zip(&cr.reports) {
        let _ = writeln!(out, "corner {name}");
        out.push_str(&golden_report(report, netlist));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::StaEngine;
    use crate::evaluator::ElmoreEvaluator;
    use crate::graph::inverter_chain;
    use qwm_circuit::waveform::TransitionKind;
    use qwm_device::{analytic_models, Technology};

    fn report_for(depth: usize) -> (String, f64) {
        let tech = Technology::cmosp35();
        let models = analytic_models(&tech);
        let nl = inverter_chain(&tech, depth, 10e-15);
        let engine = StaEngine::new(nl, &models, TransitionKind::Fall).unwrap();
        let report = engine.run(&ElmoreEvaluator).unwrap();
        let worst = report.worst.unwrap().1;
        let s = format_report(&report, engine.graph(), engine.netlist(), Some(worst * 0.8));
        (s, worst)
    }

    #[test]
    fn report_contains_path_and_slack() {
        let (s, _) = report_for(3);
        assert!(s.contains("stage"));
        assert!(s.contains("arrival"));
        assert!(s.contains("worst arrival"));
        assert!(s.contains("VIOLATED"), "required at 80% must violate:\n{s}");
        // One row per critical-path stage plus headers/footers.
        assert_eq!(s.lines().filter(|l| l.starts_with('#')).count(), 3);
    }

    #[test]
    fn slack_positive_when_required_met() {
        let tech = Technology::cmosp35();
        let models = analytic_models(&tech);
        let nl = inverter_chain(&tech, 2, 10e-15);
        let engine = StaEngine::new(nl, &models, TransitionKind::Fall).unwrap();
        let report = engine.run(&ElmoreEvaluator).unwrap();
        let worst = report.worst.unwrap().1;
        let s = format_report(&report, engine.graph(), engine.netlist(), Some(worst * 2.0));
        assert!(!s.contains("VIOLATED"));
        assert!(s.contains("slack +"));
    }

    #[test]
    fn golden_report_is_sorted_and_stable() {
        let tech = Technology::cmosp35();
        let models = analytic_models(&tech);
        let nl = inverter_chain(&tech, 3, 10e-15);
        let engine = StaEngine::new(nl, &models, TransitionKind::Fall).unwrap();
        let report = engine.run(&ElmoreEvaluator).unwrap();
        let a = golden_report(&report, engine.netlist());
        let b = golden_report(&report, engine.netlist());
        assert_eq!(a, b, "byte-identical across renders");
        assert!(a.starts_with("evaluations 3\n"));
        assert!(a.contains("worst n3 "));
        // Net lines sorted by name: in, n1, n2, n3.
        let nets: Vec<&str> = a
            .lines()
            .filter(|l| l.starts_with("net "))
            .map(|l| l.split_whitespace().nth(1).unwrap())
            .collect();
        assert_eq!(nets, ["in", "n1", "n2", "n3"]);
    }

    #[test]
    fn arrivals_in_report_are_monotone() {
        let (s, worst) = report_for(4);
        let arrivals: Vec<f64> = s
            .lines()
            .filter(|l| l.starts_with('#'))
            .map(|l| l.split_whitespace().last().unwrap().parse::<f64>().unwrap())
            .collect();
        assert!(arrivals.windows(2).all(|w| w[0] < w[1]));
        assert!(
            (arrivals.last().unwrap() - worst * 1e12).abs() < 0.01,
            "printed values are %.2f ps"
        );
    }
}
