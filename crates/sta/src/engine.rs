//! The static timing engine: arrival propagation, critical paths and
//! incremental re-analysis — now levelized-parallel.
//!
//! Arrival times propagate through the stage DAG; each stage
//! contributes its worst-case evaluated delay (pluggable — QWM by
//! default). The expensive per-stage evaluations (one small NR solve
//! per channel-connected region, the paper's decomposition) run
//! concurrently on a work-stealing scheduler from `qwm-exec`:
//!
//! * [`StaEngine::run`] — under step inputs every stage delay is
//!   independent of its arrival, so the delays are a flat parallel map
//!   followed by a serial topological reduction.
//! * [`StaEngine::run_with_slew`] / [`StaEngine::run_dual`] /
//!   [`StaEngine::run_waveform`] — each stage consumes its fanin's
//!   committed (arrival, slew/waveform) state, so stages dispatch the
//!   instant their last fanin stage commits (atomic in-degree
//!   countdown, no level barriers).
//!
//! **Determinism.** Every net is committed by exactly one driving
//! stage, and a stage only reads nets committed before it was
//! released; each task is a pure function of that state, so reports
//! are bitwise-identical for any worker count (locked down by
//! `tests/parallel_determinism.rs`). Per-stage delays are memoized in
//! lock-sharded caches that store pure results, making racing
//! double-computes value-stable; per-run evaluation counts stay exact
//! because each (stage, output) is dispatched once per run.
//!
//! Per-stage delays are cached across runs, so an *incremental*
//! re-analysis after a transistor resize re-evaluates only the touched
//! stage and then re-propagates cheap arrival maxima — the
//! incremental-speedup experiment of the calibration brief.

use crate::evaluator::{Degradation, FallbackRung, RungFailure, StageEvaluator};
use crate::graph::{StageGraph, StageId};
use qwm_circuit::netlist::{NetId, Netlist};
use qwm_circuit::waveform::{TimingMetrics, TransitionKind};
use qwm_device::model::{Geometry, ModelSet};
use qwm_exec::{Levelizer, ShardedMap};
use qwm_num::{NumError, Result};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// A full timing report.
#[derive(Debug, Clone)]
pub struct TimingReport {
    /// Worst arrival time per net \[s\] (primary inputs at 0).
    pub arrivals: HashMap<NetId, f64>,
    /// Worst-path output slew per net \[s\] (slew-aware runs only;
    /// empty otherwise).
    pub slews: HashMap<NetId, f64>,
    /// The slowest primary output and its arrival.
    pub worst: Option<(NetId, f64)>,
    /// Stages along the critical path, source-first.
    pub critical_path: Vec<StageId>,
    /// Number of stage-delay evaluations performed for this report.
    pub evaluations: usize,
    /// Waveform-accurate stage evaluations whose primary QWM attempt
    /// failed and that were recovered by a fallback rung (degraded
    /// arcs). Always zero for the cached delay/slew flows, whose
    /// evaluator errors propagate instead.
    pub waveform_failures: usize,
    /// Provenance of every arc produced by a fallback rung instead of
    /// the primary method (sorted; empty unless a degrading evaluator
    /// such as `FallbackEvaluator` was used *and* something failed).
    pub degradations: Vec<Degradation>,
}

/// Cache key for per-stage timing arcs.
///
/// Every field that influences the evaluated value is a *structural*
/// member — nothing is arithmetically packed. In particular the input
/// slew is keyed by its exact bit pattern ([`f64::to_bits`]), never a
/// quantized grid position, and the analyzed transition is part of the
/// key, so the single-slew and dual-transition flows can never alias
/// each other's entries (two bugs the 1 ps-grid packing scheme had).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct CacheKey {
    /// Evaluator name (distinct evaluators never share entries).
    evaluator: &'static str,
    /// Stage index ([`StageId`]), the invalidation granule.
    pub(crate) stage: usize,
    /// Output position within the stage.
    out_pos: usize,
    /// Analyzed output transition.
    direction: TransitionKind,
    /// Exact requested input slew, `f64::to_bits`. Zero for the
    /// step-input delay flow (which carries no slew at all).
    slew_bits: u64,
    /// Corner name for batched multi-corner runs; `""` for the
    /// single-model flows. Without this field the batched flow would be
    /// corner-blind: two corners evaluate the same `(evaluator, stage,
    /// out_pos, direction, slew)` tuple against *different* model sets,
    /// and the second corner would be served the first corner's cached
    /// arc — the latent aliasing `tests/corners.rs` pins against.
    corner: &'static str,
}

/// Sentinel for "no predecessor stage" in the per-net commit books.
pub(crate) const NO_PRED: usize = usize::MAX;

/// One committed net state of the slew-aware flow:
/// `(arrival, output slew, committing stage or NO_PRED)`.
pub(crate) type NetCommit = (f64, f64, usize);

/// Worst endpoint (net, arrival) plus the backtracked critical path.
pub(crate) type WorstAndPath = (Option<(NetId, f64)>, Vec<StageId>);

/// The timing engine: owns the netlist, the stage graph and the
/// per-stage delay caches.
///
/// All `run*` entry points take `&self` and may be driven with any
/// worker count (see [`StaEngine::set_threads`]); internal state is
/// lock-sharded caches and atomic counters, so the engine is `Sync`.
pub struct StaEngine<'m> {
    pub(crate) netlist: Netlist,
    pub(crate) graph: StageGraph,
    pub(crate) models: &'m ModelSet,
    pub(crate) direction: TransitionKind,
    /// Cached worst step-input delay per arc.
    pub(crate) delay_cache: ShardedMap<CacheKey, f64>,
    /// Cached (delay, slew) per arc at an exact input slew.
    pub(crate) slew_cache: ShardedMap<CacheKey, (f64, f64)>,
    pub(crate) evaluations: AtomicUsize,
    waveform_failures: AtomicUsize,
    /// Degradation provenance recorded by [`Self::run_waveform`]'s
    /// internal fallback ladder (the evaluator flows record theirs in
    /// the evaluator instead).
    waveform_degradations: Mutex<Vec<Degradation>>,
    threads: usize,
    /// Seed slew at the primary inputs for the incremental flow
    /// (edited via [`StaEngine::set_input_slew`]).
    pub(crate) input_slew: f64,
    /// Stages edited since the last incremental commit.
    pub(crate) dirty: std::collections::BTreeSet<usize>,
    /// Arrival/slew book committed by the last [`Self::run_incremental`]
    /// (survives across runs; `None` until the first incremental run).
    pub(crate) committed: Option<crate::incremental::CommittedBook>,
    /// Statistics of the last incremental run.
    pub(crate) last_incremental: crate::incremental::IncrementalStats,
    /// Stages edited since the last *batched corner* commit (the corner
    /// flow consumes edits independently of the single-corner flow, so
    /// interleaving `run_incremental` and `run_incremental_corners` on
    /// one engine never loses an edit).
    pub(crate) dirty_corners: std::collections::BTreeSet<usize>,
    /// Per-corner books committed by the last
    /// [`Self::run_incremental_corners`].
    pub(crate) committed_corners: Option<crate::corners::CommittedCorners>,
}

/// Stage → level map for per-stage trace records. Built only when
/// tracing is live (one allocation per run, nothing per record);
/// `None` keeps the traced-off hot path free of any work.
pub(crate) fn trace_levels(lev: &Levelizer) -> Option<Vec<u64>> {
    qwm_obs::trace::enabled().then(|| {
        let mut level_of = vec![0u64; lev.node_count()];
        for (l, nodes) in lev.levels().iter().enumerate() {
            for &n in nodes {
                level_of[n] = l as u64;
            }
        }
        level_of
    })
}

/// Opens a per-stage trace scope inside a `run_dag` worker closure.
pub(crate) fn trace_stage(
    level_of: &Option<Vec<u64>>,
    s: usize,
) -> Option<qwm_obs::trace::TraceGuard> {
    level_of.as_ref().map(|lv| {
        qwm_obs::trace::TraceGuard::enter_stage(
            "sta.stage",
            s as u64,
            lv.get(s).copied().unwrap_or(0),
        )
    })
}

impl<'m> StaEngine<'m> {
    /// Builds the engine over a netlist.
    ///
    /// `direction` selects the analyzed transition at every stage output
    /// (a full-blown STA tracks both; the paper's experiments are
    /// single-transition worst cases).
    ///
    /// The worker count defaults to `QWM_THREADS` (or the machine's
    /// available parallelism); override with [`StaEngine::set_threads`].
    ///
    /// # Errors
    ///
    /// Propagates partitioning/graph failures.
    pub fn new(netlist: Netlist, models: &'m ModelSet, direction: TransitionKind) -> Result<Self> {
        let mut graph = StageGraph::build(&netlist)?;
        // Bake fanout gate loading into each stage: a net driving other
        // stages' gates carries their input capacitance. Without this,
        // per-stage delays systematically undershoot a flat simulation.
        let mut fanout: Vec<(usize, String, f64)> = Vec::new();
        for (i, p) in graph.partitions().iter().enumerate() {
            for &net in &p.output_nets {
                let mut cap = 0.0;
                for &user in graph.users_of(net) {
                    let upart = graph.stage(user);
                    let ustage = &upart.stage;
                    if let Some(input) = ustage.input_by_name(netlist.net_name(net)) {
                        cap += ustage.input_cap(input, models);
                    }
                }
                if cap > 0.0 {
                    fanout.push((i, netlist.net_name(net).to_string(), cap));
                }
            }
        }
        for (i, name, cap) in fanout {
            let part = &mut graph.partitions_mut()[i];
            if let Some(node) = part.stage.node_by_name(&name) {
                part.stage.add_load(node, cap);
            }
        }
        Ok(StaEngine {
            netlist,
            graph,
            models,
            direction,
            delay_cache: ShardedMap::new(),
            slew_cache: ShardedMap::new(),
            evaluations: AtomicUsize::new(0),
            waveform_failures: AtomicUsize::new(0),
            waveform_degradations: Mutex::new(Vec::new()),
            threads: qwm_exec::default_threads(),
            input_slew: 0.0,
            dirty: std::collections::BTreeSet::new(),
            committed: None,
            last_incremental: crate::incremental::IncrementalStats::default(),
            dirty_corners: std::collections::BTreeSet::new(),
            committed_corners: None,
        })
    }

    /// The underlying stage graph.
    pub fn graph(&self) -> &StageGraph {
        &self.graph
    }

    /// The underlying netlist.
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// The worker count used by the `run*` entry points.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Sets the worker count (clamped to at least one). Reports are
    /// bitwise-identical for any value; this is purely a speed knob.
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads.max(1);
    }

    /// Builder-style [`StaEngine::set_threads`].
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.set_threads(threads);
        self
    }

    /// Stage-delay evaluations performed so far (across all reports).
    pub fn total_evaluations(&self) -> usize {
        self.evaluations.load(Ordering::Relaxed)
    }

    /// Waveform-accurate stage evaluations whose primary QWM attempt
    /// failed and that landed on a fallback rung so far (across all
    /// [`Self::run_waveform`] calls).
    pub fn total_waveform_failures(&self) -> usize {
        self.waveform_failures.load(Ordering::Relaxed)
    }

    /// Drains the degradation provenance recorded by
    /// [`Self::run_waveform`]'s internal fallback ladder, sorted for
    /// deterministic iteration.
    pub fn take_waveform_degradations(&self) -> Vec<Degradation> {
        let mut d = std::mem::take(
            &mut *self
                .waveform_degradations
                .lock()
                .expect("waveform degradations lock"),
        );
        d.sort_by_key(|a| a.sort_key());
        d
    }

    /// Drains and sorts the evaluator's degradation book for a report.
    pub(crate) fn drained_degradations(evaluator: &dyn StageEvaluator) -> Vec<Degradation> {
        let mut d = evaluator.take_degradations();
        d.sort_by_key(|a| a.sort_key());
        d
    }

    /// The stage dependency DAG, levelized for the parallel runners.
    pub(crate) fn levelizer(&self) -> Result<Levelizer> {
        Levelizer::from_succs(self.graph.stage_dependencies()).map_err(|e| {
            // StageGraph::build already rejected cycles, so this only
            // fires on internal bookkeeping bugs.
            NumError::InvalidInput {
                context: "StaEngine::levelizer",
                detail: e.to_string(),
            }
        })
    }

    fn stage_output_delay(
        &self,
        evaluator: &dyn StageEvaluator,
        sid: StageId,
        out_pos: usize,
    ) -> Result<f64> {
        let key = CacheKey {
            evaluator: evaluator.name(),
            stage: sid.0,
            out_pos,
            direction: self.direction,
            slew_bits: 0,
            corner: "",
        };
        if let Some(d) = self.delay_cache.get(&key) {
            qwm_obs::counter!("sta.arc.cache_hits").incr();
            if qwm_obs::trace::enabled() {
                qwm_obs::trace::record_arc(sid.0 as u64, "cached", std::time::Instant::now(), 0, 0);
            }
            return Ok(d);
        }
        let part = self.graph.stage(sid);
        let output_net = part.output_nets[out_pos];
        let node = part
            .stage
            .node_by_name(self.netlist.net_name(output_net))
            .ok_or_else(|| NumError::InvalidInput {
                context: "StaEngine::stage_output_delay",
                detail: format!("output net {output_net:?} missing from stage"),
            })?;
        let arc_t0 = qwm_obs::trace::enabled().then(|| {
            let _ = qwm_obs::trace::take_lookup_ns();
            let _ = qwm_obs::trace::take_rung();
            std::time::Instant::now()
        });
        let d = evaluator.delay(&part.stage, self.models, node, self.direction)?;
        if let Some(t0) = arc_t0 {
            let lookup_ns = qwm_obs::trace::take_lookup_ns();
            let (rung, retries) = qwm_obs::trace::take_rung().unwrap_or((evaluator.name(), 0));
            qwm_obs::trace::record_arc(sid.0 as u64, rung, t0, lookup_ns, retries);
        }
        self.evaluations.fetch_add(1, Ordering::Relaxed);
        qwm_obs::counter!("sta.arc.evaluations").incr();
        self.delay_cache.insert(key, d);
        Ok(d)
    }

    /// Rejects non-finite arrivals before any max scan, naming the
    /// offending net (the lowest-indexed one, for a deterministic
    /// message). A NaN arrival used to panic the worker mid-reduction;
    /// it now surfaces through the error/degradation machinery.
    pub(crate) fn reject_non_finite(&self, arrivals: &HashMap<NetId, f64>) -> Result<()> {
        if let Some((&n, &a)) = arrivals
            .iter()
            .filter(|(_, a)| !a.is_finite())
            .min_by_key(|(n, _)| n.0)
        {
            return Err(NumError::InvalidInput {
                context: "StaEngine::worst_and_path",
                detail: format!(
                    "non-finite arrival {a} at net {} — evaluator produced NaN/inf",
                    self.netlist.net_name(n)
                ),
            });
        }
        Ok(())
    }

    /// Worst primary output (fall back to the globally worst net), and
    /// the critical path backtracked through stage inputs.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::InvalidInput`] when any arrival is NaN or
    /// infinite, carrying the offending net name.
    pub(crate) fn worst_and_path(
        &self,
        arrivals: &HashMap<NetId, f64>,
        pred: &HashMap<NetId, StageId>,
    ) -> Result<WorstAndPath> {
        self.reject_non_finite(arrivals)?;
        let worst = self
            .netlist
            .primary_outputs()
            .iter()
            .filter_map(|&n| arrivals.get(&n).map(|&a| (n, a)))
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .or_else(|| {
                arrivals
                    .iter()
                    .map(|(&n, &a)| (n, a))
                    .max_by(|a, b| a.1.total_cmp(&b.1))
            });
        let mut critical_path = Vec::new();
        if let Some((mut net, _)) = worst {
            while let Some(&sid) = pred.get(&net) {
                critical_path.push(sid);
                // Continue from the stage input with the latest arrival.
                let next = self
                    .graph
                    .stage(sid)
                    .input_nets
                    .iter()
                    .filter_map(|&n| arrivals.get(&n).map(|&a| (n, a)))
                    .max_by(|a, b| a.1.total_cmp(&b.1));
                match next {
                    Some((n, a)) if a > 0.0 => net = n,
                    _ => break,
                }
            }
            critical_path.reverse();
        }
        Ok((worst, critical_path))
    }

    /// Runs (or re-runs) the analysis, reusing every cached stage delay.
    ///
    /// Under step inputs a stage's delay is independent of its arrival
    /// time, so all stage evaluations run as one parallel map; the
    /// arrival reduction is then serial over the topological order —
    /// deterministic by construction.
    ///
    /// # Errors
    ///
    /// Propagates evaluator failures.
    pub fn run(&self, evaluator: &dyn StageEvaluator) -> Result<TimingReport> {
        let _span = qwm_obs::span!("sta.run");
        let _trace = qwm_obs::trace::TraceGuard::enter("sta.run");
        let evals_before = self.total_evaluations();
        // Parallel phase: every (stage, output) delay.
        let mut tasks: Vec<(StageId, usize)> = Vec::new();
        let mut offsets: Vec<usize> = Vec::with_capacity(self.graph.len());
        for (i, p) in self.graph.partitions().iter().enumerate() {
            offsets.push(tasks.len());
            for pos in 0..p.output_nets.len() {
                tasks.push((StageId(i), pos));
            }
        }
        let delays = qwm_exec::try_parallel_map(self.threads, tasks.len(), |_w, t| {
            let (sid, pos) = tasks[t];
            self.stage_output_delay(evaluator, sid, pos)
        })
        .map_err(|(_, e)| e)?;
        // Serial reduction keyed by the topological stage order.
        let mut arrivals: HashMap<NetId, f64> = HashMap::new();
        let mut pred: HashMap<NetId, StageId> = HashMap::new();
        for &pi in self.netlist.primary_inputs() {
            arrivals.insert(pi, 0.0);
        }
        for &sid in self.graph.topo_order() {
            let part = self.graph.stage(sid);
            let launch = part
                .input_nets
                .iter()
                .map(|n| arrivals.get(n).copied().unwrap_or(0.0))
                .fold(0.0_f64, f64::max);
            for (pos, &net) in part.output_nets.iter().enumerate() {
                let arr = launch + delays[offsets[sid.0] + pos];
                let entry = arrivals.entry(net).or_insert(f64::NEG_INFINITY);
                if arr > *entry {
                    *entry = arr;
                    pred.insert(net, sid);
                }
            }
        }
        let (worst, critical_path) = self.worst_and_path(&arrivals, &pred)?;
        Ok(TimingReport {
            arrivals,
            slews: HashMap::new(),
            worst,
            critical_path,
            evaluations: self.total_evaluations() - evals_before,
            waveform_failures: 0,
            degradations: Self::drained_degradations(evaluator),
        })
    }

    /// Slew-aware analysis: each stage is evaluated with the input slew
    /// of its latest-arriving input (quantized to 1 ps for caching), and
    /// its measured output slew feeds the downstream stages — the
    /// waveform-propagation refinement the paper's §III-C motivates over
    /// delay/slope-only timing.
    ///
    /// Because a stage's delay now depends on its fanin's slew, stages
    /// are dispatched dependency-driven: each one runs the moment its
    /// last fanin stage commits its output (arrival, slew) — no level
    /// barriers. Every net has one driving stage, so commits never race
    /// and the result is bitwise-identical for any worker count.
    ///
    /// `input_slew` seeds the primary inputs (10–90 %).
    ///
    /// # Errors
    ///
    /// Propagates evaluator failures.
    pub fn run_with_slew(
        &self,
        evaluator: &dyn StageEvaluator,
        input_slew: f64,
    ) -> Result<TimingReport> {
        let _span = qwm_obs::span!("sta.run_with_slew");
        let evals_before = self.total_evaluations();
        let book = self.propagate_slew_book(evaluator, input_slew)?;
        self.report_from_book(&book, evals_before, evaluator)
    }

    /// Full slew-aware propagation: evaluates every stage
    /// dependency-driven and returns the committed per-net book —
    /// shared by [`Self::run_with_slew`] and the incremental flow's
    /// cold path, so both commit bitwise-identical state.
    pub(crate) fn propagate_slew_book(
        &self,
        evaluator: &dyn StageEvaluator,
        input_slew: f64,
    ) -> Result<Vec<Option<NetCommit>>> {
        let _trace = qwm_obs::trace::TraceGuard::enter("sta.propagate");
        // Per-net commit book: (arrival, slew, committing stage).
        let book: Vec<Mutex<Option<NetCommit>>> = (0..self.netlist.net_count())
            .map(|_| Mutex::new(None))
            .collect();
        for &pi in self.netlist.primary_inputs() {
            *book[pi.0].lock().expect("net book") = Some((0.0, input_slew, NO_PRED));
        }
        let lev = {
            let _t = qwm_obs::trace::TraceGuard::enter("sta.levelize");
            self.levelizer()?
        };
        let level_of = trace_levels(&lev);
        qwm_exec::run_dag(self.threads, &lev, |_w, s| -> Result<()> {
            let _stage = trace_stage(&level_of, s);
            let sid = StageId(s);
            let part = self.graph.stage(sid);
            let (launch, launch_slew) = part
                .input_nets
                .iter()
                .map(|n| match *book[n.0].lock().expect("net book") {
                    Some((a, sl, _)) => (a, sl),
                    None => (0.0, input_slew),
                })
                .fold(
                    (0.0_f64, input_slew),
                    |acc, (a, s)| {
                        if a > acc.0 {
                            (a, s)
                        } else {
                            acc
                        }
                    },
                );
            for (pos, &net) in part.output_nets.iter().enumerate() {
                let m = self.stage_output_timing(evaluator, sid, pos, launch_slew)?;
                let arr = launch + m.delay;
                let mut slot = book[net.0].lock().expect("net book");
                if slot.is_none_or(|(a, _, _)| arr > a) {
                    *slot = Some((arr, m.slew, s));
                }
            }
            Ok(())
        })
        .map_err(|(_, e)| e)?;
        Ok(book
            .into_iter()
            .map(|slot| slot.into_inner().expect("net book"))
            .collect())
    }

    /// Builds a [`TimingReport`] from a committed per-net book.
    pub(crate) fn report_from_book(
        &self,
        book: &[Option<NetCommit>],
        evals_before: usize,
        evaluator: &dyn StageEvaluator,
    ) -> Result<TimingReport> {
        self.book_to_report(
            book,
            self.total_evaluations() - evals_before,
            Self::drained_degradations(evaluator),
        )
    }

    /// Report-body extraction shared by the single-model and batched
    /// corner flows: deterministic, keyed by net index; `evaluations`
    /// and `degradations` are supplied by the caller (the corner flow
    /// attributes both per corner).
    pub(crate) fn book_to_report(
        &self,
        book: &[Option<NetCommit>],
        evaluations: usize,
        degradations: Vec<Degradation>,
    ) -> Result<TimingReport> {
        let mut arrivals: HashMap<NetId, f64> = HashMap::new();
        let mut slews: HashMap<NetId, f64> = HashMap::new();
        let mut pred: HashMap<NetId, StageId> = HashMap::new();
        for (i, slot) in book.iter().enumerate() {
            if let Some((a, sl, p)) = *slot {
                arrivals.insert(NetId(i), a);
                slews.insert(NetId(i), sl);
                if p != NO_PRED {
                    pred.insert(NetId(i), StageId(p));
                }
            }
        }
        let (worst, critical_path) = self.worst_and_path(&arrivals, &pred)?;
        Ok(TimingReport {
            arrivals,
            slews,
            worst,
            critical_path,
            evaluations,
            waveform_failures: 0,
            degradations,
        })
    }

    /// Dual-polarity, slew-aware analysis: rise and fall arrivals are
    /// tracked separately per net and propagated through inverting arcs
    /// (an output fall launches from the latest input *rise* and vice
    /// versa — the static-CMOS convention). Primary inputs get both
    /// transitions at t = 0 with `input_slew`.
    ///
    /// Dependency-driven parallel, like [`StaEngine::run_with_slew`].
    ///
    /// Returns `(fall report, rise report)` whose `arrivals`/`slews`
    /// describe the respective output transitions; `worst` is the later
    /// of each net's transitions in the fall report and symmetric in the
    /// rise report.
    ///
    /// # Errors
    ///
    /// Propagates evaluator failures.
    pub fn run_dual(
        &self,
        evaluator: &dyn StageEvaluator,
        input_slew: f64,
    ) -> Result<(TimingReport, TimingReport)> {
        let _span = qwm_obs::span!("sta.run_dual");
        let _trace = qwm_obs::trace::TraceGuard::enter("sta.run_dual");
        let evals_before = self.total_evaluations();
        // (arrival, slew) per net per transition.
        let mk_book = || -> Vec<Mutex<Option<(f64, f64)>>> {
            (0..self.netlist.net_count())
                .map(|_| Mutex::new(None))
                .collect()
        };
        let (fall, rise) = (mk_book(), mk_book());
        for &pi in self.netlist.primary_inputs() {
            *fall[pi.0].lock().expect("net book") = Some((0.0, input_slew));
            *rise[pi.0].lock().expect("net book") = Some((0.0, input_slew));
        }
        let lev = {
            let _t = qwm_obs::trace::TraceGuard::enter("sta.levelize");
            self.levelizer()?
        };
        let level_of = trace_levels(&lev);
        qwm_exec::run_dag(self.threads, &lev, |_w, s| -> Result<()> {
            let _stage = trace_stage(&level_of, s);
            let sid = StageId(s);
            let part = self.graph.stage(sid);
            // Latest input rise drives the output fall, and vice versa.
            let launch_of = |m: &[Mutex<Option<(f64, f64)>>]| {
                part.input_nets
                    .iter()
                    .filter_map(|n| *m[n.0].lock().expect("net book"))
                    .fold(
                        (0.0_f64, input_slew),
                        |acc, (a, s)| {
                            if a > acc.0 {
                                (a, s)
                            } else {
                                acc
                            }
                        },
                    )
            };
            let (launch_fall, slew_for_fall) = launch_of(&rise);
            let (launch_rise, slew_for_rise) = launch_of(&fall);
            for (pos, &net) in part.output_nets.iter().enumerate() {
                let mf = self.stage_output_timing_dir(
                    evaluator,
                    sid,
                    pos,
                    slew_for_fall,
                    TransitionKind::Fall,
                )?;
                {
                    let mut slot = fall[net.0].lock().expect("net book");
                    if slot.is_none_or(|(a, _)| launch_fall + mf.delay > a) {
                        *slot = Some((launch_fall + mf.delay, mf.slew));
                    }
                }
                let mr = self.stage_output_timing_dir(
                    evaluator,
                    sid,
                    pos,
                    slew_for_rise,
                    TransitionKind::Rise,
                )?;
                {
                    let mut slot = rise[net.0].lock().expect("net book");
                    if slot.is_none_or(|(a, _)| launch_rise + mr.delay > a) {
                        *slot = Some((launch_rise + mr.delay, mr.slew));
                    }
                }
            }
            Ok(())
        })
        .map_err(|(_, e)| e)?;
        let evaluations = self.total_evaluations() - evals_before;
        // Split the evaluator's provenance by the transition it was
        // recorded for, so each polarity report carries its own arcs.
        let (fall_deg, rise_deg): (Vec<Degradation>, Vec<Degradation>) =
            Self::drained_degradations(evaluator)
                .into_iter()
                .partition(|d| d.direction == TransitionKind::Fall);
        let mk_report =
            |book: &[Mutex<Option<(f64, f64)>>], degradations: Vec<Degradation>| -> Result<_> {
                let mut arrivals: HashMap<NetId, f64> = HashMap::new();
                let mut slews: HashMap<NetId, f64> = HashMap::new();
                for (i, slot) in book.iter().enumerate() {
                    if let Some((a, s)) = *slot.lock().expect("net book") {
                        arrivals.insert(NetId(i), a);
                        slews.insert(NetId(i), s);
                    }
                }
                self.reject_non_finite(&arrivals)?;
                let worst = self
                    .netlist
                    .primary_outputs()
                    .iter()
                    .filter_map(|&n| arrivals.get(&n).map(|&a| (n, a)))
                    .max_by(|a, b| a.1.total_cmp(&b.1));
                Ok(TimingReport {
                    arrivals,
                    slews,
                    worst,
                    critical_path: Vec::new(),
                    evaluations,
                    waveform_failures: 0,
                    degradations,
                })
            };
        Ok((mk_report(&fall, fall_deg)?, mk_report(&rise, rise_deg)?))
    }

    /// Waveform-accurate analysis — the paper's §III-C vision made
    /// operational end to end: each stage is evaluated with the *actual*
    /// output waveform of its driving stage (in absolute time), not a
    /// delay/slew abstraction, and its own QWM output waveform feeds the
    /// next stage. Dual polarity, inverting arcs.
    ///
    /// Dependency-driven parallel: a stage solves its two QWM
    /// transitions once every fanin waveform is committed.
    ///
    /// This closes the residual gap the linear-ramp slew model leaves on
    /// weakly driven chains. No caching (waveforms are unique); cost is
    /// one QWM evaluation per (stage output × transition).
    ///
    /// Returns `(fall arrivals, rise arrivals)` keyed by net, in absolute
    /// seconds (primary inputs step at `t = 0` with `input_slew`).
    ///
    /// A failing QWM evaluation no longer skips the arc: it descends the
    /// fallback ladder (damped QWM retry → adaptive transient →
    /// fixed-step transient), counts in `waveform_failures`, and records
    /// provenance retrievable via
    /// [`Self::take_waveform_degradations`]. Structural skips (no driver
    /// waveform, inextractable chain, no crossing) remain skips.
    ///
    /// # Errors
    ///
    /// Propagates setup failures; a stage whose transitions exhaust
    /// *every* fallback rung is a hard error carrying the full
    /// rung-failure chain.
    pub fn run_waveform(
        &self,
        config: &qwm_core::evaluate::QwmConfig,
        input_slew: f64,
    ) -> Result<(HashMap<NetId, f64>, HashMap<NetId, f64>)> {
        use qwm_circuit::waveform::Waveform;
        use qwm_core::evaluate::evaluate;

        let _span = qwm_obs::span!("sta.run_waveform");
        let _trace = qwm_obs::trace::TraceGuard::enter("sta.run_waveform");
        let vdd = self.models.tech().vdd;
        // Per net per transition: (50% crossing time, full waveform).
        let mk_book = || -> Vec<Mutex<Option<(f64, Waveform)>>> {
            (0..self.netlist.net_count())
                .map(|_| Mutex::new(None))
                .collect()
        };
        let (fall, rise) = (mk_book(), mk_book());
        let ramp = (input_slew / 0.8).max(1e-12);
        for &pi in self.netlist.primary_inputs() {
            *fall[pi.0].lock().expect("net book") =
                Some((0.5 * ramp, Waveform::ramp_interned(0.0, ramp, vdd, 0.0)));
            *rise[pi.0].lock().expect("net book") =
                Some((0.5 * ramp, Waveform::ramp_interned(0.0, ramp, 0.0, vdd)));
        }
        let lev = {
            let _t = qwm_obs::trace::TraceGuard::enter("sta.levelize");
            self.levelizer()?
        };
        let level_of = trace_levels(&lev);
        qwm_exec::run_dag(self.threads, &lev, |_w, s| -> Result<()> {
            let _stage = trace_stage(&level_of, s);
            let sid = StageId(s);
            let part = self.graph.stage(sid);
            for &output_net in &part.output_nets {
                for direction in [TransitionKind::Fall, TransitionKind::Rise] {
                    // Inverting arc: output falls when inputs rise.
                    let drivers = match direction {
                        TransitionKind::Fall => &rise,
                        TransitionKind::Rise => &fall,
                    };
                    // Latest-crossing driving input wins (worst case).
                    let Some((t50, wf)) = part
                        .input_nets
                        .iter()
                        .filter_map(|n| drivers[n.0].lock().expect("net book").clone())
                        .max_by(|a, b| a.0.partial_cmp(&b.0).expect("finite crossings"))
                    else {
                        continue;
                    };
                    let node = part
                        .stage
                        .node_by_name(self.netlist.net_name(output_net))
                        .ok_or_else(|| NumError::InvalidInput {
                            context: "StaEngine::run_waveform",
                            detail: format!("output net {output_net:?} missing"),
                        })?;
                    // Sensitize the worst chain; gating inputs get the
                    // real driving waveform, others stay inactive.
                    let Ok(chain) =
                        qwm_core::chain::Chain::extract_worst(&part.stage, node, direction)
                    else {
                        continue;
                    };
                    let gating = chain.gating_inputs();
                    let inactive = match direction {
                        TransitionKind::Fall => 0.0,
                        TransitionKind::Rise => vdd,
                    };
                    let inputs: Vec<Waveform> = (0..part.stage.inputs().len())
                        .map(|i| {
                            if gating.contains(&qwm_circuit::InputId(i)) {
                                wf.clone()
                            } else {
                                Waveform::constant_interned(inactive)
                            }
                        })
                        .collect();
                    let v_init = match direction {
                        TransitionKind::Fall => vdd,
                        TransitionKind::Rise => 0.0,
                    };
                    let init: Vec<f64> = (0..part.stage.node_count())
                        .map(|i| match part.stage.node(qwm_circuit::NodeId(i)).kind {
                            qwm_circuit::NodeKind::Supply => vdd,
                            qwm_circuit::NodeKind::Ground => 0.0,
                            qwm_circuit::NodeKind::Internal => v_init,
                        })
                        .collect();
                    // Fallback ladder: QWM → damped retry → adaptive →
                    // fixed-step transient. A rung succeeds when it
                    // yields a committed output waveform; exhausting
                    // every rung is a hard error, never a silently
                    // missing arc.
                    let qwm_attempt = |cfg: &qwm_core::evaluate::QwmConfig| -> Result<Waveform> {
                        let r = evaluate(
                            &part.stage,
                            self.models,
                            &inputs,
                            &init,
                            node,
                            direction,
                            cfg,
                        )?;
                        r.output_waveform().to_waveform(2)
                    };
                    // Transient rungs integrate well past the driver's
                    // 50 % crossing; dense samples are decimated so the
                    // downstream QWM stage is not flooded with promoted
                    // breakpoints.
                    let t_stop = t50 + 2e-9;
                    let transient_attempt = |adaptive: bool| -> Result<Waveform> {
                        let r = if adaptive {
                            qwm_spice::adaptive::simulate_adaptive(
                                &part.stage,
                                self.models,
                                &inputs,
                                &init,
                                &qwm_spice::adaptive::AdaptiveConfig::new(t_stop),
                            )?
                        } else {
                            qwm_spice::engine::simulate(
                                &part.stage,
                                self.models,
                                &inputs,
                                &init,
                                &qwm_spice::engine::TransientConfig::hspice_1ps(t_stop),
                            )?
                        };
                        let w = r.waveform(node)?;
                        let s = w.samples();
                        let (t0, t1) = (s[0].0, s[s.len() - 1].0);
                        Waveform::from_samples(w.resample(t0, t1, 33)?)
                    };
                    let mut failures: Vec<RungFailure> = Vec::new();
                    let note =
                        |failures: &mut Vec<RungFailure>, rung: FallbackRung, e: NumError| {
                            qwm_obs::warn("sta.run_waveform.rung_failed")
                                .field("stage", sid.0)
                                .field("direction", format!("{direction:?}"))
                                .field("rung", rung.name())
                                .field("error", &e)
                                .emit();
                            failures.push(RungFailure {
                                rung,
                                error: e.to_string(),
                            });
                        };
                    // Arc trace: solve time covers the whole ladder;
                    // stale lookup attribution is discarded up front.
                    let arc_t0 = qwm_obs::trace::enabled().then(|| {
                        let _ = qwm_obs::trace::take_lookup_ns();
                        std::time::Instant::now()
                    });
                    let landed = 'ladder: {
                        match qwm_attempt(config) {
                            Ok(w) => break 'ladder Some((FallbackRung::Qwm, w)),
                            Err(e) => note(&mut failures, FallbackRung::Qwm, e),
                        }
                        {
                            let _retry = qwm_fault::scope("retry");
                            let mut damped = config.clone();
                            damped.region.max_iterations *= 2;
                            damped.region.max_dv *= 0.5;
                            match qwm_attempt(&damped) {
                                Ok(w) => break 'ladder Some((FallbackRung::QwmRetry, w)),
                                Err(e) => note(&mut failures, FallbackRung::QwmRetry, e),
                            }
                        }
                        match transient_attempt(true) {
                            Ok(w) => break 'ladder Some((FallbackRung::SpiceAdaptive, w)),
                            Err(e) => note(&mut failures, FallbackRung::SpiceAdaptive, e),
                        }
                        match transient_attempt(false) {
                            Ok(w) => break 'ladder Some((FallbackRung::SpiceFixed, w)),
                            Err(e) => note(&mut failures, FallbackRung::SpiceFixed, e),
                        }
                        None
                    };
                    let Some((rung, out_wf)) = landed else {
                        qwm_obs::counter!("sta.waveform.exhausted").incr();
                        let chain_text: Vec<String> = failures
                            .iter()
                            .map(|f| format!("{}: {}", f.rung.name(), f.error))
                            .collect();
                        return Err(NumError::InvalidInput {
                            context: "StaEngine::run_waveform: all fallback rungs failed",
                            detail: format!(
                                "stage {} {:?} output {}: {}",
                                sid.0,
                                direction,
                                self.netlist.net_name(output_net),
                                chain_text.join("; ")
                            ),
                        });
                    };
                    self.evaluations.fetch_add(1, Ordering::Relaxed);
                    qwm_obs::counter!("sta.arc.evaluations").incr();
                    if let Some(t0) = arc_t0 {
                        qwm_obs::trace::record_arc(
                            sid.0 as u64,
                            rung.name(),
                            t0,
                            qwm_obs::trace::take_lookup_ns(),
                            failures.len() as u64,
                        );
                    }
                    if rung != FallbackRung::Qwm {
                        self.waveform_failures.fetch_add(1, Ordering::Relaxed);
                        qwm_obs::counter!("sta.waveform.failures").incr();
                        qwm_obs::warn("sta.run_waveform.degraded")
                            .field("stage", sid.0)
                            .field("direction", format!("{direction:?}"))
                            .field("rung", rung.name())
                            .emit();
                        self.waveform_degradations
                            .lock()
                            .expect("waveform degradations lock")
                            .push(Degradation {
                                output: self.netlist.net_name(output_net).to_string(),
                                direction,
                                landed: rung,
                                failures: std::mem::take(&mut failures),
                            });
                    }
                    let Some(t_out) = out_wf.crossing(vdd / 2.0, direction == TransitionKind::Rise)
                    else {
                        continue;
                    };
                    let book = match direction {
                        TransitionKind::Fall => &fall,
                        TransitionKind::Rise => &rise,
                    };
                    let mut slot = book[output_net.0].lock().expect("net book");
                    if slot.as_ref().is_none_or(|(t, _)| t_out > *t) {
                        *slot = Some((t_out, out_wf));
                    }
                }
            }
            Ok(())
        })
        .map_err(|(_, e)| e)?;
        let to_map = |book: Vec<Mutex<Option<(f64, qwm_circuit::Waveform)>>>| {
            book.into_iter()
                .enumerate()
                .filter_map(|(i, slot)| {
                    slot.into_inner()
                        .expect("net book")
                        .map(|(t, _)| (NetId(i), t))
                })
                .collect()
        };
        Ok((to_map(fall), to_map(rise)))
    }

    /// Timing arc at an *exact* input slew. The cache key carries the
    /// slew's full bit pattern and the transition as structural fields:
    /// two distinct slews can never collapse into one grid bin (the old
    /// 1 ps rounding evaluated at the rounded slew, so sub-ps slews all
    /// became 0), and the single-slew and dual flows can never serve
    /// each other entries computed for a different request (the old
    /// arithmetic packing made even-valued dual keys alias single-flow
    /// keys). Entries are shared only when evaluator, stage, output,
    /// direction *and* slew bits all match — by construction the same
    /// pure computation.
    fn stage_output_timing_dir(
        &self,
        evaluator: &dyn StageEvaluator,
        sid: StageId,
        out_pos: usize,
        input_slew: f64,
        direction: TransitionKind,
    ) -> Result<TimingMetrics> {
        self.arc_timing(
            evaluator,
            sid,
            out_pos,
            input_slew,
            direction,
            self.models,
            "",
            None,
        )
    }

    /// The shared slew-aware timing-arc core: cache probe, evaluate,
    /// commit — against an explicit model set and corner. The
    /// single-model flows pass the engine's own models with corner `""`;
    /// the batched corner flow passes per-corner models, the interned
    /// corner name (a structural cache-key member) and a per-corner
    /// evaluation counter so every corner's report carries its own exact
    /// count.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn arc_timing(
        &self,
        evaluator: &dyn StageEvaluator,
        sid: StageId,
        out_pos: usize,
        input_slew: f64,
        direction: TransitionKind,
        models: &ModelSet,
        corner: &'static str,
        corner_evals: Option<&AtomicUsize>,
    ) -> Result<TimingMetrics> {
        let key = CacheKey {
            evaluator: evaluator.name(),
            stage: sid.0,
            out_pos,
            direction,
            slew_bits: input_slew.to_bits(),
            corner,
        };
        if let Some(d) = self.slew_cache.get(&key) {
            qwm_obs::counter!("sta.arc.cache_hits").incr();
            if qwm_obs::trace::enabled() {
                qwm_obs::trace::record_corner_arc(
                    sid.0 as u64,
                    corner,
                    "cached",
                    std::time::Instant::now(),
                    0,
                    0,
                );
            }
            return Ok(TimingMetrics {
                delay: d.0,
                slew: d.1,
            });
        }
        let part = self.graph.stage(sid);
        let output_net = part.output_nets[out_pos];
        let node = part
            .stage
            .node_by_name(self.netlist.net_name(output_net))
            .ok_or_else(|| NumError::InvalidInput {
                context: "StaEngine::stage_output_timing_dir",
                detail: format!("output net {output_net:?} missing from stage"),
            })?;
        // Arc trace: discard stale lookup/rung attribution, then bracket
        // the evaluator call so solve time, lookup time and the landed
        // rung all land on this arc's record.
        let arc_t0 = qwm_obs::trace::enabled().then(|| {
            let _ = qwm_obs::trace::take_lookup_ns();
            let _ = qwm_obs::trace::take_rung();
            std::time::Instant::now()
        });
        let m = evaluator.timing(&part.stage, models, node, direction, input_slew)?;
        if let Some(t0) = arc_t0 {
            let lookup_ns = qwm_obs::trace::take_lookup_ns();
            let (rung, retries) = qwm_obs::trace::take_rung().unwrap_or((evaluator.name(), 0));
            qwm_obs::trace::record_corner_arc(sid.0 as u64, corner, rung, t0, lookup_ns, retries);
        }
        self.evaluations.fetch_add(1, Ordering::Relaxed);
        qwm_obs::counter!("sta.arc.evaluations").incr();
        if let Some(ce) = corner_evals {
            ce.fetch_add(1, Ordering::Relaxed);
            qwm_obs::counter!("sta.corner.evaluations").incr();
        }
        self.slew_cache.insert(key, (m.delay, m.slew));
        Ok(m)
    }

    pub(crate) fn stage_output_timing(
        &self,
        evaluator: &dyn StageEvaluator,
        sid: StageId,
        out_pos: usize,
        input_slew: f64,
    ) -> Result<TimingMetrics> {
        self.stage_output_timing_dir(evaluator, sid, out_pos, input_slew, self.direction)
    }

    /// Resizes netlist device `device_index` to width `w` and invalidates
    /// only the containing stage's cached delays (plus its gate-net
    /// driver's, whose baked fanout load changed). The next
    /// [`Self::run`] re-evaluates just those stages — the incremental
    /// flow — at any worker count: the caches are keyed by stage, not
    /// by worker, so invalidation is exact no matter which worker
    /// originally computed an entry.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::InvalidInput`] for an unknown device or a
    /// non-positive width.
    pub fn resize_device(&mut self, device_index: usize, w: f64) -> Result<()> {
        if w <= 0.0 {
            return Err(NumError::InvalidInput {
                context: "StaEngine::resize_device",
                detail: format!("width {w}"),
            });
        }
        let sid =
            self.graph
                .stage_of_device(device_index)
                .ok_or_else(|| NumError::InvalidInput {
                    context: "StaEngine::resize_device",
                    detail: format!("device {device_index} not found"),
                })?;
        // Update both the netlist record and the partitioned stage edge.
        let (geom, old_geom, gate_net, polarity) = {
            let d = &self.netlist.devices()[device_index];
            (Geometry { w, ..d.geom }, d.geom, d.gate, d.kind.polarity())
        };
        self.netlist.set_device_geometry(device_index, geom)?;
        let part = &mut self.graph.partitions_mut()[sid.0];
        let pos = part
            .device_indices
            .iter()
            .position(|&d| d == device_index)
            .expect("device is in its stage");
        part.stage.set_edge_geometry(qwm_circuit::EdgeId(pos), geom);
        // Invalidate that stage's cached delays and mark it dirty for
        // the incremental flow.
        self.delay_cache.retain(|k| k.stage != sid.0);
        self.slew_cache.retain(|k| k.stage != sid.0);
        self.dirty.insert(sid.0);
        self.dirty_corners.insert(sid.0);

        // The resized gate's capacitance loads whichever stage drives
        // its gate net: update that stage's baked fanout load and drop
        // its caches too. A missing node here means the stage graph and
        // the netlist disagree about net naming — silently skipping the
        // load update would leave the driver's caches warm with a stale
        // load, so it is a hard error.
        if let (Some(gate), Some(p)) = (gate_net, polarity) {
            if let Some(driver) = self.graph.driver_of(gate) {
                let model = self.models.for_polarity(p);
                let delta = model.input_cap(&geom) - model.input_cap(&old_geom);
                let name = self.netlist.net_name(gate).to_string();
                let dpart = &mut self.graph.partitions_mut()[driver.0];
                let node =
                    dpart
                        .stage
                        .node_by_name(&name)
                        .ok_or_else(|| NumError::InvalidInput {
                            context: "StaEngine::resize_device",
                            detail: format!(
                                "gate net {name:?} has driver stage {} but no node of that \
                                 name in it — stage graph and netlist disagree",
                                driver.0
                            ),
                        })?;
                dpart.stage.add_load(node, delta);
                self.delay_cache.retain(|k| k.stage != driver.0);
                self.slew_cache.retain(|k| k.stage != driver.0);
                self.dirty.insert(driver.0);
                self.dirty_corners.insert(driver.0);
            }
        }
        Ok(())
    }
}
#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::{ElmoreEvaluator, QwmEvaluator};
    use crate::graph::inverter_chain;
    use qwm_device::{analytic_models, Technology};

    #[test]
    fn chain_arrivals_accumulate() {
        let tech = Technology::cmosp35();
        let models = analytic_models(&tech);
        let nl = inverter_chain(&tech, 4, 10e-15);
        let out = nl.find_net("n4").unwrap();
        let engine = StaEngine::new(nl, &models, TransitionKind::Fall).unwrap();
        let report = engine.run(&ElmoreEvaluator).unwrap();
        let (worst_net, worst_arr) = report.worst.unwrap();
        assert_eq!(worst_net, out);
        assert!(worst_arr > 0.0);
        assert_eq!(report.evaluations, 4);
        assert_eq!(report.critical_path.len(), 4);
        // Arrivals strictly increase along the chain.
        let nl = engine.netlist();
        let mut prev = 0.0;
        for i in 1..=4 {
            let n = nl.find_net(&format!("n{i}")).unwrap();
            let a = report.arrivals[&n];
            assert!(a > prev, "n{i} arrival {a} > {prev}");
            prev = a;
        }
    }

    #[test]
    fn second_run_reuses_cache() {
        let tech = Technology::cmosp35();
        let models = analytic_models(&tech);
        let nl = inverter_chain(&tech, 5, 10e-15);
        let engine = StaEngine::new(nl, &models, TransitionKind::Fall).unwrap();
        let r1 = engine.run(&ElmoreEvaluator).unwrap();
        assert_eq!(r1.evaluations, 5);
        let r2 = engine.run(&ElmoreEvaluator).unwrap();
        assert_eq!(r2.evaluations, 0, "fully cached");
        assert_eq!(r1.worst.unwrap().1, r2.worst.unwrap().1);
    }

    #[test]
    fn incremental_resize_reevaluates_one_stage() {
        let tech = Technology::cmosp35();
        let models = analytic_models(&tech);
        let nl = inverter_chain(&tech, 6, 10e-15);
        let mut engine = StaEngine::new(nl, &models, TransitionKind::Fall).unwrap();
        let full = engine.run(&QwmEvaluator::default()).unwrap();
        assert_eq!(full.evaluations, 6);
        let before = full.worst.unwrap().1;

        // Upsize the NMOS of the middle inverter (device index 4 = MN2).
        engine.resize_device(4, 4.0 * tech.w_min).unwrap();
        let incr = engine.run(&QwmEvaluator::default()).unwrap();
        assert_eq!(
            incr.evaluations, 2,
            "the touched stage and its (re-loaded) driver re-evaluate"
        );
        let after = incr.worst.unwrap().1;
        assert!(
            after < before,
            "upsizing sped the path up: {after} vs {before}"
        );
    }

    #[test]
    fn resize_validation() {
        let tech = Technology::cmosp35();
        let models = analytic_models(&tech);
        let nl = inverter_chain(&tech, 2, 10e-15);
        let mut engine = StaEngine::new(nl, &models, TransitionKind::Fall).unwrap();
        assert!(engine.resize_device(0, -1.0).is_err());
        assert!(engine.resize_device(99, 1e-6).is_err());
    }

    /// Regression (silent resize skip): when the stage graph and the
    /// netlist disagree about a gate net's name, the fanout-load update
    /// on the driver stage used to be silently skipped, leaving its
    /// caches warm with a stale load. It is now a hard error.
    #[test]
    fn resize_with_renamed_net_is_a_hard_error() {
        let tech = Technology::cmosp35();
        let models = analytic_models(&tech);
        let nl = inverter_chain(&tech, 2, 10e-15);
        let mut engine = StaEngine::new(nl, &models, TransitionKind::Fall).unwrap();
        // Rename n1 behind the stage graph's back: its driver stage
        // still calls the node "n1".
        let n1 = engine.netlist.find_net("n1").unwrap();
        engine.netlist.rename_net(n1, "n1_renamed").unwrap();
        // Device 2 = MN1, gated by the renamed net: the driver-stage
        // load update must fail loudly, not skip.
        let err = engine.resize_device(2, 2.0 * tech.w_min).unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains("n1_renamed") && msg.contains("disagree"),
            "expected a graph/netlist-disagreement error, got: {msg}"
        );
    }

    #[test]
    fn qwm_and_elmore_agree_on_critical_path_shape() {
        let tech = Technology::cmosp35();
        let models = analytic_models(&tech);
        let nl = inverter_chain(&tech, 3, 10e-15);
        let e1 = StaEngine::new(nl, &models, TransitionKind::Fall).unwrap();
        let r_elm = e1.run(&ElmoreEvaluator).unwrap();
        let r_qwm = e1.run(&QwmEvaluator::default()).unwrap();
        // Same path, possibly different absolute numbers. (The second
        // run reuses the Elmore cache, so compare paths via fresh engine.)
        assert_eq!(r_elm.critical_path.len(), 3);
        assert_eq!(r_qwm.critical_path.len(), 3);
    }
}

#[cfg(test)]
mod slew_tests {
    use super::*;
    use crate::evaluator::{QwmEvaluator, SpiceEvaluator, StageEvaluator};
    use crate::graph::inverter_chain;
    use qwm_device::{analytic_models, Technology};

    #[test]
    fn slew_aware_run_populates_slews_and_differs_from_step_run() {
        let tech = Technology::cmosp35();
        let models = analytic_models(&tech);
        let nl = inverter_chain(&tech, 4, 10e-15);
        let engine = StaEngine::new(nl, &models, TransitionKind::Fall).unwrap();
        let step = engine.run(&QwmEvaluator::default()).unwrap();
        let slewed = engine
            .run_with_slew(&QwmEvaluator::default(), 60e-12)
            .unwrap();
        // Slews recorded for every driven net.
        assert!(slewed.slews.len() >= 4);
        // A 60 ps input ramp must slow the first stage down relative to
        // the (near-)step analysis.
        let a = step.worst.unwrap().1;
        let b = slewed.worst.unwrap().1;
        assert!(b > a, "slew-aware {b} vs step {a}");
    }

    #[test]
    fn slew_aware_cache_hits_on_rerun() {
        let tech = Technology::cmosp35();
        let models = analytic_models(&tech);
        let nl = inverter_chain(&tech, 3, 10e-15);
        let engine = StaEngine::new(nl, &models, TransitionKind::Fall).unwrap();
        let r1 = engine
            .run_with_slew(&QwmEvaluator::default(), 20e-12)
            .unwrap();
        assert_eq!(r1.evaluations, 3);
        let r2 = engine
            .run_with_slew(&QwmEvaluator::default(), 20e-12)
            .unwrap();
        assert_eq!(r2.evaluations, 0, "identical seed slew is fully cached");
        // Different seed slew re-evaluates at least the first stage.
        let r3 = engine
            .run_with_slew(&QwmEvaluator::default(), 50e-12)
            .unwrap();
        assert!(r3.evaluations >= 1);
    }

    #[test]
    fn qwm_slew_tracks_spice_slew() {
        let tech = Technology::cmosp35();
        let models = analytic_models(&tech);
        let nl = inverter_chain(&tech, 2, 10e-15);
        let engine = StaEngine::new(nl, &models, TransitionKind::Fall).unwrap();
        let q = engine
            .run_with_slew(&QwmEvaluator::default(), 30e-12)
            .unwrap();
        let s = engine
            .run_with_slew(&SpiceEvaluator::default(), 30e-12)
            .unwrap();
        let (qa, sa) = (q.worst.unwrap().1, s.worst.unwrap().1);
        assert!((qa - sa).abs() / sa < 0.10, "qwm {qa} vs spice {sa}");
        // Output slews agree on the final net too.
        let net = q.worst.unwrap().0;
        let (qs, ss) = (q.slews[&net], s.slews[&net]);
        assert!((qs - ss).abs() / ss < 0.25, "slew qwm {qs} vs spice {ss}");
    }

    #[test]
    fn elmore_default_timing_reports_zero_slew() {
        let tech = Technology::cmosp35();
        let models = analytic_models(&tech);
        let nl = inverter_chain(&tech, 2, 10e-15);
        let engine = StaEngine::new(nl, &models, TransitionKind::Fall).unwrap();
        let part = &engine.graph().partitions()[0];
        let node = part
            .stage
            .node_by_name(engine.netlist().net_name(part.output_nets[0]))
            .unwrap();
        let m = crate::evaluator::ElmoreEvaluator
            .timing(&part.stage, &models, node, TransitionKind::Fall, 10e-12)
            .unwrap();
        assert_eq!(m.slew, 0.0);
        assert!(m.delay > 0.0);
    }
}

#[cfg(test)]
mod cache_key_regression_tests {
    use super::*;
    use crate::evaluator::QwmEvaluator;
    use crate::graph::inverter_chain;
    use qwm_device::{analytic_models, Technology};

    /// Regression (slew quantization): slews used to be rounded to a
    /// 1 ps grid *and evaluated at the rounded value*, so two slews
    /// 0.4 ps apart returned the same cached arc and every sub-ps slew
    /// collapsed to exactly 0. Exact `to_bits` keys + exact evaluation
    /// make them distinct.
    #[test]
    fn nearby_slews_produce_different_delays() {
        let tech = Technology::cmosp35();
        let models = analytic_models(&tech);
        let nl = inverter_chain(&tech, 2, 10e-15);
        let engine = StaEngine::new(nl, &models, TransitionKind::Fall).unwrap();
        let ev = QwmEvaluator::default();
        // Same 1 ps bin under the old rounding (both "10 ps").
        let a = engine.run_with_slew(&ev, 10.0e-12).unwrap();
        let b = engine.run_with_slew(&ev, 10.4e-12).unwrap();
        assert!(b.evaluations > 0, "second slew must not hit the cache");
        assert_ne!(
            a.worst.unwrap().1,
            b.worst.unwrap().1,
            "slews 0.4 ps apart must evaluate differently"
        );
        // Sub-ps slews used to collapse to one cached entry at exactly
        // 0 ps; they now key separately. (Their *values* may still
        // agree: the stimulus builder floors the input ramp at 1 ps,
        // a physical clamp, not a cache artifact.)
        let _ = engine.run_with_slew(&ev, 0.2e-12).unwrap();
        let d = engine.run_with_slew(&ev, 0.4e-12).unwrap();
        assert!(d.evaluations > 0, "sub-ps slews must not share a bin");
    }

    /// Regression (cross-flow cache aliasing): the dual flow packed
    /// `(out_pos * 1_000_003 + slew_key) * 2 + dir_tag` and the single
    /// flow `out_pos * 1_000_003 + slew_key` into the same cache, so a
    /// dual run at 10 ps (key 20) aliased a later single run at 20 ps
    /// (key 20) and served it a wrong-direction entry. The direction is
    /// now a structural key field; interleaving must be value-identical
    /// to a cold single run.
    #[test]
    fn interleaved_dual_and_single_runs_never_alias() {
        let tech = Technology::cmosp35();
        let models = analytic_models(&tech);
        let nl = inverter_chain(&tech, 3, 10e-15);
        let ev = QwmEvaluator::default();
        let engine = StaEngine::new(nl, &models, TransitionKind::Fall).unwrap();
        let _ = engine.run_dual(&ev, 10e-12).unwrap();
        let interleaved = engine.run_with_slew(&ev, 20e-12).unwrap();
        let fresh =
            StaEngine::new(engine.netlist().clone(), &models, TransitionKind::Fall).unwrap();
        let reference = fresh.run_with_slew(&ev, 20e-12).unwrap();
        assert_eq!(
            interleaved.worst.unwrap().1,
            reference.worst.unwrap().1,
            "dual-flow cache entries leaked into the single-slew flow"
        );
        for (net, arr) in &reference.arrivals {
            assert_eq!(interleaved.arrivals[net], *arr, "net {net:?}");
        }
        for (net, slew) in &reference.slews {
            assert_eq!(interleaved.slews[net], *slew, "slew at {net:?}");
        }
    }
}

#[cfg(test)]
mod nan_regression_tests {
    use super::*;
    use crate::evaluator::StageEvaluator;
    use crate::graph::inverter_chain;
    use qwm_circuit::{LogicStage, NodeId};
    use qwm_device::{analytic_models, ModelSet, Technology};

    /// An evaluator that "converges" to NaN — the shape of a silent
    /// numeric blow-up inside a model.
    struct NanEvaluator;

    impl StageEvaluator for NanEvaluator {
        fn name(&self) -> &'static str {
            "nan-test"
        }

        fn delay(
            &self,
            _stage: &LogicStage,
            _models: &ModelSet,
            _output: NodeId,
            _direction: TransitionKind,
        ) -> Result<f64> {
            Ok(f64::NAN)
        }
    }

    /// Regression (NaN panic): `worst_and_path` used
    /// `partial_cmp(...).expect("finite arrivals")`, so one NaN arrival
    /// panicked the worker mid-reduction. It now surfaces as a
    /// `NumError` naming the offending net.
    #[test]
    fn nan_arrival_is_an_error_not_a_panic() {
        let tech = Technology::cmosp35();
        let models = analytic_models(&tech);
        let nl = inverter_chain(&tech, 3, 10e-15);
        let engine = StaEngine::new(nl, &models, TransitionKind::Fall).unwrap();
        let err = engine.run(&NanEvaluator).unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains("non-finite") && msg.contains("n1"),
            "error must name the first offending net: {msg}"
        );
        // The slew-aware and dual flows reject it too.
        assert!(engine.run_with_slew(&NanEvaluator, 10e-12).is_err());
        assert!(engine.run_dual(&NanEvaluator, 10e-12).is_err());
    }
}

#[cfg(test)]
mod dual_tests {
    use super::*;
    use crate::evaluator::QwmEvaluator;
    use crate::graph::inverter_chain;
    use qwm_device::{analytic_models, Technology};

    #[test]
    fn dual_run_tracks_both_transitions() {
        let tech = Technology::cmosp35();
        let models = analytic_models(&tech);
        let nl = inverter_chain(&tech, 3, 10e-15);
        let engine = StaEngine::new(nl, &models, TransitionKind::Fall).unwrap();
        let (fall, rise) = engine.run_dual(&QwmEvaluator::default(), 5e-12).unwrap();
        let out = engine.netlist().find_net("n3").unwrap();
        let (af, ar) = (fall.arrivals[&out], rise.arrivals[&out]);
        assert!(af > 0.0 && ar > 0.0);
        // The wp = 2·wn inverter is not perfectly balanced: the two
        // polarities must differ measurably.
        assert!(
            (af - ar).abs() / af.max(ar) > 0.02,
            "fall {af} vs rise {ar}"
        );
        // Slews populated for both.
        assert!(fall.slews[&out] > 0.0);
        assert!(rise.slews[&out] > 0.0);
        // Second dual run is fully cached.
        let before = engine.total_evaluations();
        let _ = engine.run_dual(&QwmEvaluator::default(), 5e-12).unwrap();
        assert_eq!(engine.total_evaluations(), before);
    }
}
