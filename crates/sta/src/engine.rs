//! The static timing engine: arrival propagation, critical paths and
//! incremental re-analysis.
//!
//! Arrival times propagate through the stage DAG in topological order;
//! each stage contributes its worst-case evaluated delay (pluggable —
//! QWM by default). Per-stage delays are cached, so a *incremental*
//! re-analysis after a transistor resize re-evaluates only the touched
//! stage and then re-propagates cheap arrival maxima — the
//! incremental-speedup experiment of the calibration brief.

use crate::evaluator::StageEvaluator;
use crate::graph::{StageGraph, StageId};
use qwm_circuit::netlist::{NetId, Netlist};
use qwm_circuit::waveform::{TimingMetrics, TransitionKind};
use qwm_device::model::{Geometry, ModelSet};
use qwm_num::{NumError, Result};
use std::collections::HashMap;

/// A full timing report.
#[derive(Debug, Clone)]
pub struct TimingReport {
    /// Worst arrival time per net \[s\] (primary inputs at 0).
    pub arrivals: HashMap<NetId, f64>,
    /// Worst-path output slew per net \[s\] (slew-aware runs only;
    /// empty otherwise).
    pub slews: HashMap<NetId, f64>,
    /// The slowest primary output and its arrival.
    pub worst: Option<(NetId, f64)>,
    /// Stages along the critical path, source-first.
    pub critical_path: Vec<StageId>,
    /// Number of stage-delay evaluations performed for this report.
    pub evaluations: usize,
    /// Stage evaluations that failed and were skipped (waveform-accurate
    /// analysis only; always zero for the cached delay/slew flows, whose
    /// evaluator errors propagate instead of being skipped).
    pub waveform_failures: usize,
}

/// The timing engine: owns the netlist, the stage graph and the
/// per-stage delay cache.
pub struct StaEngine<'m> {
    netlist: Netlist,
    graph: StageGraph,
    models: &'m ModelSet,
    direction: TransitionKind,
    /// Cached worst delay per (evaluator, stage, output position).
    delay_cache: HashMap<(&'static str, usize, usize), f64>,
    /// Cached (delay, slew) per (evaluator, stage, packed out/slew key).
    slew_cache: HashMap<(&'static str, usize, usize), (f64, f64)>,
    evaluations: usize,
    waveform_failures: usize,
}

impl<'m> StaEngine<'m> {
    /// Builds the engine over a netlist.
    ///
    /// `direction` selects the analyzed transition at every stage output
    /// (a full-blown STA tracks both; the paper's experiments are
    /// single-transition worst cases).
    ///
    /// # Errors
    ///
    /// Propagates partitioning/graph failures.
    pub fn new(netlist: Netlist, models: &'m ModelSet, direction: TransitionKind) -> Result<Self> {
        let mut graph = StageGraph::build(&netlist)?;
        // Bake fanout gate loading into each stage: a net driving other
        // stages' gates carries their input capacitance. Without this,
        // per-stage delays systematically undershoot a flat simulation.
        let mut fanout: Vec<(usize, String, f64)> = Vec::new();
        for (i, p) in graph.partitions().iter().enumerate() {
            for &net in &p.output_nets {
                let mut cap = 0.0;
                for &user in graph.users_of(net) {
                    let upart = graph.stage(user);
                    let ustage = &upart.stage;
                    if let Some(input) = ustage.input_by_name(netlist.net_name(net)) {
                        cap += ustage.input_cap(input, models);
                    }
                }
                if cap > 0.0 {
                    fanout.push((i, netlist.net_name(net).to_string(), cap));
                }
            }
        }
        for (i, name, cap) in fanout {
            let part = &mut graph.partitions_mut()[i];
            if let Some(node) = part.stage.node_by_name(&name) {
                part.stage.add_load(node, cap);
            }
        }
        Ok(StaEngine {
            netlist,
            graph,
            models,
            direction,
            delay_cache: HashMap::new(),
            slew_cache: HashMap::new(),
            evaluations: 0,
            waveform_failures: 0,
        })
    }

    /// The underlying stage graph.
    pub fn graph(&self) -> &StageGraph {
        &self.graph
    }

    /// The underlying netlist.
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// Stage-delay evaluations performed so far (across all reports).
    pub fn total_evaluations(&self) -> usize {
        self.evaluations
    }

    /// Waveform-accurate stage evaluations that failed and were skipped
    /// so far (across all [`Self::run_waveform`] calls).
    pub fn total_waveform_failures(&self) -> usize {
        self.waveform_failures
    }

    fn stage_output_delay(
        &mut self,
        evaluator: &dyn StageEvaluator,
        sid: StageId,
        out_pos: usize,
    ) -> Result<f64> {
        if let Some(&d) = self.delay_cache.get(&(evaluator.name(), sid.0, out_pos)) {
            qwm_obs::counter!("sta.cache_hits").incr();
            return Ok(d);
        }
        let part = self.graph.stage(sid);
        let output_net = part.output_nets[out_pos];
        let node = part
            .stage
            .node_by_name(self.netlist.net_name(output_net))
            .ok_or_else(|| NumError::InvalidInput {
                context: "StaEngine::stage_output_delay",
                detail: format!("output net {output_net:?} missing from stage"),
            })?;
        let d = evaluator.delay(&part.stage, self.models, node, self.direction)?;
        self.evaluations += 1;
        qwm_obs::counter!("sta.evaluations").incr();
        self.delay_cache
            .insert((evaluator.name(), sid.0, out_pos), d);
        Ok(d)
    }

    /// Runs (or re-runs) the analysis, reusing every cached stage delay.
    ///
    /// # Errors
    ///
    /// Propagates evaluator failures.
    pub fn run(&mut self, evaluator: &dyn StageEvaluator) -> Result<TimingReport> {
        let _span = qwm_obs::span!("sta.run");
        let evals_before = self.evaluations;
        let mut arrivals: HashMap<NetId, f64> = HashMap::new();
        let mut pred: HashMap<NetId, StageId> = HashMap::new();
        for &pi in self.netlist.primary_inputs() {
            arrivals.insert(pi, 0.0);
        }
        let order: Vec<StageId> = self.graph.topo_order().to_vec();
        for sid in order {
            let input_nets = self.graph.stage(sid).input_nets.clone();
            let launch = input_nets
                .iter()
                .map(|n| arrivals.get(n).copied().unwrap_or(0.0))
                .fold(0.0_f64, f64::max);
            let out_count = self.graph.stage(sid).output_nets.len();
            for pos in 0..out_count {
                let d = self.stage_output_delay(evaluator, sid, pos)?;
                let net = self.graph.stage(sid).output_nets[pos];
                let arr = launch + d;
                let entry = arrivals.entry(net).or_insert(f64::NEG_INFINITY);
                if arr > *entry {
                    *entry = arr;
                    pred.insert(net, sid);
                }
            }
        }
        // Worst primary output (fall back to the globally worst net).
        let worst = self
            .netlist
            .primary_outputs()
            .iter()
            .filter_map(|&n| arrivals.get(&n).map(|&a| (n, a)))
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite arrivals"))
            .or_else(|| {
                arrivals
                    .iter()
                    .map(|(&n, &a)| (n, a))
                    .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite arrivals"))
            });
        // Backtrack the critical path through stage inputs.
        let mut critical_path = Vec::new();
        if let Some((mut net, _)) = worst {
            while let Some(&sid) = pred.get(&net) {
                critical_path.push(sid);
                // Continue from the stage input with the latest arrival.
                let next = self
                    .graph
                    .stage(sid)
                    .input_nets
                    .iter()
                    .filter_map(|&n| arrivals.get(&n).map(|&a| (n, a)))
                    .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite arrivals"));
                match next {
                    Some((n, a)) if a > 0.0 => net = n,
                    _ => break,
                }
            }
            critical_path.reverse();
        }
        Ok(TimingReport {
            arrivals,
            slews: HashMap::new(),
            worst,
            critical_path,
            evaluations: self.evaluations - evals_before,
            waveform_failures: 0,
        })
    }

    /// Slew-aware analysis: each stage is evaluated with the input slew
    /// of its latest-arriving input (quantized to 1 ps for caching), and
    /// its measured output slew feeds the downstream stages — the
    /// waveform-propagation refinement the paper's §III-C motivates over
    /// delay/slope-only timing.
    ///
    /// `input_slew` seeds the primary inputs (10–90 %).
    ///
    /// # Errors
    ///
    /// Propagates evaluator failures.
    pub fn run_with_slew(
        &mut self,
        evaluator: &dyn StageEvaluator,
        input_slew: f64,
    ) -> Result<TimingReport> {
        let _span = qwm_obs::span!("sta.run_with_slew");
        let evals_before = self.evaluations;
        let mut arrivals: HashMap<NetId, f64> = HashMap::new();
        let mut slews: HashMap<NetId, f64> = HashMap::new();
        let mut pred: HashMap<NetId, StageId> = HashMap::new();
        for &pi in self.netlist.primary_inputs() {
            arrivals.insert(pi, 0.0);
            slews.insert(pi, input_slew);
        }
        let order: Vec<StageId> = self.graph.topo_order().to_vec();
        for sid in order {
            let input_nets = self.graph.stage(sid).input_nets.clone();
            let (launch, launch_slew) = input_nets
                .iter()
                .map(|n| {
                    (
                        arrivals.get(n).copied().unwrap_or(0.0),
                        slews.get(n).copied().unwrap_or(input_slew),
                    )
                })
                .fold(
                    (0.0_f64, input_slew),
                    |acc, (a, s)| {
                        if a > acc.0 {
                            (a, s)
                        } else {
                            acc
                        }
                    },
                );
            let out_count = self.graph.stage(sid).output_nets.len();
            for pos in 0..out_count {
                let m = self.stage_output_timing(evaluator, sid, pos, launch_slew)?;
                let net = self.graph.stage(sid).output_nets[pos];
                let arr = launch + m.delay;
                let entry = arrivals.entry(net).or_insert(f64::NEG_INFINITY);
                if arr > *entry {
                    *entry = arr;
                    slews.insert(net, m.slew);
                    pred.insert(net, sid);
                }
            }
        }
        let worst = self
            .netlist
            .primary_outputs()
            .iter()
            .filter_map(|&n| arrivals.get(&n).map(|&a| (n, a)))
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite arrivals"))
            .or_else(|| {
                arrivals
                    .iter()
                    .map(|(&n, &a)| (n, a))
                    .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite arrivals"))
            });
        let mut critical_path = Vec::new();
        if let Some((mut net, _)) = worst {
            while let Some(&sid) = pred.get(&net) {
                critical_path.push(sid);
                let next = self
                    .graph
                    .stage(sid)
                    .input_nets
                    .iter()
                    .filter_map(|&n| arrivals.get(&n).map(|&a| (n, a)))
                    .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite arrivals"));
                match next {
                    Some((n, a)) if a > 0.0 => net = n,
                    _ => break,
                }
            }
            critical_path.reverse();
        }
        Ok(TimingReport {
            arrivals,
            slews,
            worst,
            critical_path,
            evaluations: self.evaluations - evals_before,
            waveform_failures: 0,
        })
    }

    /// Dual-polarity, slew-aware analysis: rise and fall arrivals are
    /// tracked separately per net and propagated through inverting arcs
    /// (an output fall launches from the latest input *rise* and vice
    /// versa — the static-CMOS convention). Primary inputs get both
    /// transitions at t = 0 with `input_slew`.
    ///
    /// Returns `(fall report, rise report)` whose `arrivals`/`slews`
    /// describe the respective output transitions; `worst` is the later
    /// of each net's transitions in the fall report and symmetric in the
    /// rise report.
    ///
    /// # Errors
    ///
    /// Propagates evaluator failures.
    pub fn run_dual(
        &mut self,
        evaluator: &dyn StageEvaluator,
        input_slew: f64,
    ) -> Result<(TimingReport, TimingReport)> {
        let _span = qwm_obs::span!("sta.run_dual");
        let evals_before = self.evaluations;
        // (arrival, slew) per net per transition.
        let mut fall: HashMap<NetId, (f64, f64)> = HashMap::new();
        let mut rise: HashMap<NetId, (f64, f64)> = HashMap::new();
        for &pi in self.netlist.primary_inputs() {
            fall.insert(pi, (0.0, input_slew));
            rise.insert(pi, (0.0, input_slew));
        }
        let order: Vec<StageId> = self.graph.topo_order().to_vec();
        for sid in order {
            let input_nets = self.graph.stage(sid).input_nets.clone();
            // Latest input rise drives the output fall, and vice versa.
            let launch_of = |m: &HashMap<NetId, (f64, f64)>| {
                input_nets.iter().filter_map(|n| m.get(n).copied()).fold(
                    (0.0_f64, input_slew),
                    |acc, (a, s)| {
                        if a > acc.0 {
                            (a, s)
                        } else {
                            acc
                        }
                    },
                )
            };
            let (launch_fall, slew_for_fall) = launch_of(&rise);
            let (launch_rise, slew_for_rise) = launch_of(&fall);
            let out_count = self.graph.stage(sid).output_nets.len();
            for pos in 0..out_count {
                let net = self.graph.stage(sid).output_nets[pos];
                let mf = self.stage_output_timing_dir(
                    evaluator,
                    sid,
                    pos,
                    slew_for_fall,
                    TransitionKind::Fall,
                )?;
                let ef = fall.entry(net).or_insert((f64::NEG_INFINITY, 0.0));
                if launch_fall + mf.delay > ef.0 {
                    *ef = (launch_fall + mf.delay, mf.slew);
                }
                let mr = self.stage_output_timing_dir(
                    evaluator,
                    sid,
                    pos,
                    slew_for_rise,
                    TransitionKind::Rise,
                )?;
                let er = rise.entry(net).or_insert((f64::NEG_INFINITY, 0.0));
                if launch_rise + mr.delay > er.0 {
                    *er = (launch_rise + mr.delay, mr.slew);
                }
            }
        }
        let evaluations = self.evaluations - evals_before;
        let mk_report = |m: &HashMap<NetId, (f64, f64)>| {
            let arrivals: HashMap<NetId, f64> = m.iter().map(|(&n, &(a, _))| (n, a)).collect();
            let slews: HashMap<NetId, f64> = m.iter().map(|(&n, &(_, s))| (n, s)).collect();
            let worst = self
                .netlist
                .primary_outputs()
                .iter()
                .filter_map(|&n| arrivals.get(&n).map(|&a| (n, a)))
                .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite arrivals"));
            TimingReport {
                arrivals,
                slews,
                worst,
                critical_path: Vec::new(),
                evaluations,
                waveform_failures: 0,
            }
        };
        Ok((mk_report(&fall), mk_report(&rise)))
    }

    /// Waveform-accurate analysis — the paper's §III-C vision made
    /// operational end to end: each stage is evaluated with the *actual*
    /// output waveform of its driving stage (in absolute time), not a
    /// delay/slew abstraction, and its own QWM output waveform feeds the
    /// next stage. Dual polarity, inverting arcs.
    ///
    /// This closes the residual gap the linear-ramp slew model leaves on
    /// weakly driven chains. No caching (waveforms are unique); cost is
    /// one QWM evaluation per (stage output × transition).
    ///
    /// Returns `(fall arrivals, rise arrivals)` keyed by net, in absolute
    /// seconds (primary inputs step at `t = 0` with `input_slew`).
    ///
    /// # Errors
    ///
    /// Propagates evaluation failures.
    pub fn run_waveform(
        &mut self,
        config: &qwm_core::evaluate::QwmConfig,
        input_slew: f64,
    ) -> Result<(HashMap<NetId, f64>, HashMap<NetId, f64>)> {
        use qwm_circuit::waveform::Waveform;
        use qwm_core::evaluate::evaluate;

        let _span = qwm_obs::span!("sta.run_waveform");
        let vdd = self.models.tech().vdd;
        // Per net per transition: (50% crossing time, full waveform).
        let mut fall: HashMap<NetId, (f64, Waveform)> = HashMap::new();
        let mut rise: HashMap<NetId, (f64, Waveform)> = HashMap::new();
        let ramp = (input_slew / 0.8).max(1e-12);
        for &pi in self.netlist.primary_inputs() {
            fall.insert(pi, (0.5 * ramp, Waveform::ramp(0.0, ramp, vdd, 0.0)));
            rise.insert(pi, (0.5 * ramp, Waveform::ramp(0.0, ramp, 0.0, vdd)));
        }
        let order: Vec<StageId> = self.graph.topo_order().to_vec();
        for sid in order {
            let part_inputs = self.graph.stage(sid).input_nets.clone();
            let out_count = self.graph.stage(sid).output_nets.len();
            for pos in 0..out_count {
                for direction in [TransitionKind::Fall, TransitionKind::Rise] {
                    // Inverting arc: output falls when inputs rise.
                    let drivers = match direction {
                        TransitionKind::Fall => &rise,
                        TransitionKind::Rise => &fall,
                    };
                    // Latest-crossing driving input wins (worst case).
                    let Some((_, (t50, wf))) = part_inputs
                        .iter()
                        .filter_map(|n| drivers.get(n).map(|d| (n, d)))
                        .max_by(|a, b| a.1 .0.partial_cmp(&b.1 .0).expect("finite crossings"))
                    else {
                        continue;
                    };
                    let (t50, wf) = (*t50, wf.clone());
                    let part = self.graph.stage(sid);
                    let output_net = part.output_nets[pos];
                    let node = part
                        .stage
                        .node_by_name(self.netlist.net_name(output_net))
                        .ok_or_else(|| NumError::InvalidInput {
                            context: "StaEngine::run_waveform",
                            detail: format!("output net {output_net:?} missing"),
                        })?;
                    // Sensitize the worst chain; gating inputs get the
                    // real driving waveform, others stay inactive.
                    let Ok(chain) =
                        qwm_core::chain::Chain::extract_worst(&part.stage, node, direction)
                    else {
                        continue;
                    };
                    let gating = chain.gating_inputs();
                    let inactive = match direction {
                        TransitionKind::Fall => 0.0,
                        TransitionKind::Rise => vdd,
                    };
                    let inputs: Vec<Waveform> = (0..part.stage.inputs().len())
                        .map(|i| {
                            if gating.contains(&qwm_circuit::InputId(i)) {
                                wf.clone()
                            } else {
                                Waveform::constant(inactive)
                            }
                        })
                        .collect();
                    let v_init = match direction {
                        TransitionKind::Fall => vdd,
                        TransitionKind::Rise => 0.0,
                    };
                    let init: Vec<f64> = (0..part.stage.node_count())
                        .map(|i| match part.stage.node(qwm_circuit::NodeId(i)).kind {
                            qwm_circuit::NodeKind::Supply => vdd,
                            qwm_circuit::NodeKind::Ground => 0.0,
                            qwm_circuit::NodeKind::Internal => v_init,
                        })
                        .collect();
                    let r = match evaluate(
                        &part.stage,
                        self.models,
                        &inputs,
                        &init,
                        node,
                        direction,
                        config,
                    ) {
                        Ok(r) => r,
                        Err(e) => {
                            self.waveform_failures += 1;
                            qwm_obs::counter!("sta.waveform_failures").incr();
                            qwm_obs::warn("sta.run_waveform.eval_failed")
                                .field("stage", sid.0)
                                .field("direction", format!("{direction:?}"))
                                .field("error", e)
                                .emit();
                            continue;
                        }
                    };
                    self.evaluations += 1;
                    qwm_obs::counter!("sta.evaluations").incr();
                    let Ok(out_wf) = r.output_waveform().to_waveform(2) else {
                        continue;
                    };
                    let Some(t_out) = out_wf.crossing(vdd / 2.0, direction == TransitionKind::Rise)
                    else {
                        continue;
                    };
                    let _ = t50; // arrival carried in absolute time by t_out
                    let book = match direction {
                        TransitionKind::Fall => &mut fall,
                        TransitionKind::Rise => &mut rise,
                    };
                    let entry = book
                        .entry(output_net)
                        .or_insert((f64::NEG_INFINITY, out_wf.clone()));
                    if t_out > entry.0 {
                        *entry = (t_out, out_wf);
                    }
                }
            }
        }
        let to_map = |m: HashMap<NetId, (f64, qwm_circuit::Waveform)>| {
            m.into_iter().map(|(n, (t, _))| (n, t)).collect()
        };
        Ok((to_map(fall), to_map(rise)))
    }

    fn stage_output_timing_dir(
        &mut self,
        evaluator: &dyn StageEvaluator,
        sid: StageId,
        out_pos: usize,
        input_slew: f64,
        direction: TransitionKind,
    ) -> Result<TimingMetrics> {
        let slew_key = (input_slew / 1e-12).round() as usize;
        let dir_tag = if direction == TransitionKind::Rise {
            1
        } else {
            0
        };
        let key = (
            evaluator.name(),
            sid.0,
            (out_pos * 1_000_003 + slew_key) * 2 + dir_tag,
        );
        if let Some(&d) = self.slew_cache.get(&key) {
            qwm_obs::counter!("sta.cache_hits").incr();
            return Ok(TimingMetrics {
                delay: d.0,
                slew: d.1,
            });
        }
        let part = self.graph.stage(sid);
        let output_net = part.output_nets[out_pos];
        let node = part
            .stage
            .node_by_name(self.netlist.net_name(output_net))
            .ok_or_else(|| NumError::InvalidInput {
                context: "StaEngine::stage_output_timing_dir",
                detail: format!("output net {output_net:?} missing from stage"),
            })?;
        let m = evaluator.timing(
            &part.stage,
            self.models,
            node,
            direction,
            slew_key as f64 * 1e-12,
        )?;
        self.evaluations += 1;
        qwm_obs::counter!("sta.evaluations").incr();
        self.slew_cache.insert(key, (m.delay, m.slew));
        Ok(m)
    }

    fn stage_output_timing(
        &mut self,
        evaluator: &dyn StageEvaluator,
        sid: StageId,
        out_pos: usize,
        input_slew: f64,
    ) -> Result<TimingMetrics> {
        // Quantize the slew so the cache has a chance to hit.
        let slew_key = (input_slew / 1e-12).round() as usize;
        let key = (evaluator.name(), sid.0, out_pos * 1_000_003 + slew_key);
        if let Some(&d) = self.slew_cache.get(&key) {
            qwm_obs::counter!("sta.cache_hits").incr();
            return Ok(TimingMetrics {
                delay: d.0,
                slew: d.1,
            });
        }
        let part = self.graph.stage(sid);
        let output_net = part.output_nets[out_pos];
        let node = part
            .stage
            .node_by_name(self.netlist.net_name(output_net))
            .ok_or_else(|| NumError::InvalidInput {
                context: "StaEngine::stage_output_timing",
                detail: format!("output net {output_net:?} missing from stage"),
            })?;
        let m = evaluator.timing(
            &part.stage,
            self.models,
            node,
            self.direction,
            slew_key as f64 * 1e-12,
        )?;
        self.evaluations += 1;
        qwm_obs::counter!("sta.evaluations").incr();
        self.slew_cache.insert(key, (m.delay, m.slew));
        Ok(m)
    }

    /// Resizes netlist device `device_index` to width `w` and invalidates
    /// only the containing stage's cached delays. The next [`Self::run`]
    /// re-evaluates just that stage — the incremental flow.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::InvalidInput`] for an unknown device or a
    /// non-positive width.
    pub fn resize_device(&mut self, device_index: usize, w: f64) -> Result<()> {
        if w <= 0.0 {
            return Err(NumError::InvalidInput {
                context: "StaEngine::resize_device",
                detail: format!("width {w}"),
            });
        }
        let sid =
            self.graph
                .stage_of_device(device_index)
                .ok_or_else(|| NumError::InvalidInput {
                    context: "StaEngine::resize_device",
                    detail: format!("device {device_index} not found"),
                })?;
        // Update both the netlist record and the partitioned stage edge.
        let (geom, old_geom, gate_net, polarity) = {
            let d = &self.netlist.devices()[device_index];
            (Geometry { w, ..d.geom }, d.geom, d.gate, d.kind.polarity())
        };
        self.netlist.set_device_geometry(device_index, geom)?;
        let part = &mut self.graph_mut().partitions_mut()[sid.0];
        let pos = part
            .device_indices
            .iter()
            .position(|&d| d == device_index)
            .expect("device is in its stage");
        part.stage.set_edge_geometry(qwm_circuit::EdgeId(pos), geom);
        // Invalidate that stage's cached delays.
        self.delay_cache.retain(|&(_, s, _), _| s != sid.0);
        self.slew_cache.retain(|&(_, s, _), _| s != sid.0);

        // The resized gate's capacitance loads whichever stage drives
        // its gate net: update that stage's baked fanout load and drop
        // its caches too.
        if let (Some(gate), Some(p)) = (gate_net, polarity) {
            if let Some(driver) = self.graph.driver_of(gate) {
                let model = self.models.for_polarity(p);
                let delta = model.input_cap(&geom) - model.input_cap(&old_geom);
                let name = self.netlist.net_name(gate).to_string();
                let dpart = &mut self.graph_mut().partitions_mut()[driver.0];
                if let Some(node) = dpart.stage.node_by_name(&name) {
                    dpart.stage.add_load(node, delta);
                    self.delay_cache.retain(|&(_, s, _), _| s != driver.0);
                    self.slew_cache.retain(|&(_, s, _), _| s != driver.0);
                }
            }
        }
        Ok(())
    }

    fn graph_mut(&mut self) -> &mut StageGraph {
        &mut self.graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::{ElmoreEvaluator, QwmEvaluator};
    use crate::graph::inverter_chain;
    use qwm_device::{analytic_models, Technology};

    #[test]
    fn chain_arrivals_accumulate() {
        let tech = Technology::cmosp35();
        let models = analytic_models(&tech);
        let nl = inverter_chain(&tech, 4, 10e-15);
        let out = nl.find_net("n4").unwrap();
        let mut engine = StaEngine::new(nl, &models, TransitionKind::Fall).unwrap();
        let report = engine.run(&ElmoreEvaluator).unwrap();
        let (worst_net, worst_arr) = report.worst.unwrap();
        assert_eq!(worst_net, out);
        assert!(worst_arr > 0.0);
        assert_eq!(report.evaluations, 4);
        assert_eq!(report.critical_path.len(), 4);
        // Arrivals strictly increase along the chain.
        let nl = engine.netlist();
        let mut prev = 0.0;
        for i in 1..=4 {
            let n = nl.find_net(&format!("n{i}")).unwrap();
            let a = report.arrivals[&n];
            assert!(a > prev, "n{i} arrival {a} > {prev}");
            prev = a;
        }
    }

    #[test]
    fn second_run_reuses_cache() {
        let tech = Technology::cmosp35();
        let models = analytic_models(&tech);
        let nl = inverter_chain(&tech, 5, 10e-15);
        let mut engine = StaEngine::new(nl, &models, TransitionKind::Fall).unwrap();
        let r1 = engine.run(&ElmoreEvaluator).unwrap();
        assert_eq!(r1.evaluations, 5);
        let r2 = engine.run(&ElmoreEvaluator).unwrap();
        assert_eq!(r2.evaluations, 0, "fully cached");
        assert_eq!(r1.worst.unwrap().1, r2.worst.unwrap().1);
    }

    #[test]
    fn incremental_resize_reevaluates_one_stage() {
        let tech = Technology::cmosp35();
        let models = analytic_models(&tech);
        let nl = inverter_chain(&tech, 6, 10e-15);
        let mut engine = StaEngine::new(nl, &models, TransitionKind::Fall).unwrap();
        let full = engine.run(&QwmEvaluator::default()).unwrap();
        assert_eq!(full.evaluations, 6);
        let before = full.worst.unwrap().1;

        // Upsize the NMOS of the middle inverter (device index 4 = MN2).
        engine.resize_device(4, 4.0 * tech.w_min).unwrap();
        let incr = engine.run(&QwmEvaluator::default()).unwrap();
        assert_eq!(
            incr.evaluations, 2,
            "the touched stage and its (re-loaded) driver re-evaluate"
        );
        let after = incr.worst.unwrap().1;
        assert!(
            after < before,
            "upsizing sped the path up: {after} vs {before}"
        );
    }

    #[test]
    fn resize_validation() {
        let tech = Technology::cmosp35();
        let models = analytic_models(&tech);
        let nl = inverter_chain(&tech, 2, 10e-15);
        let mut engine = StaEngine::new(nl, &models, TransitionKind::Fall).unwrap();
        assert!(engine.resize_device(0, -1.0).is_err());
        assert!(engine.resize_device(99, 1e-6).is_err());
    }

    #[test]
    fn qwm_and_elmore_agree_on_critical_path_shape() {
        let tech = Technology::cmosp35();
        let models = analytic_models(&tech);
        let nl = inverter_chain(&tech, 3, 10e-15);
        let mut e1 = StaEngine::new(nl, &models, TransitionKind::Fall).unwrap();
        let r_elm = e1.run(&ElmoreEvaluator).unwrap();
        let r_qwm = e1.run(&QwmEvaluator::default()).unwrap();
        // Same path, possibly different absolute numbers. (The second
        // run reuses the Elmore cache, so compare paths via fresh engine.)
        assert_eq!(r_elm.critical_path.len(), 3);
        assert_eq!(r_qwm.critical_path.len(), 3);
    }
}

#[cfg(test)]
mod slew_tests {
    use super::*;
    use crate::evaluator::{QwmEvaluator, SpiceEvaluator, StageEvaluator};
    use crate::graph::inverter_chain;
    use qwm_device::{analytic_models, Technology};

    #[test]
    fn slew_aware_run_populates_slews_and_differs_from_step_run() {
        let tech = Technology::cmosp35();
        let models = analytic_models(&tech);
        let nl = inverter_chain(&tech, 4, 10e-15);
        let mut engine = StaEngine::new(nl, &models, TransitionKind::Fall).unwrap();
        let step = engine.run(&QwmEvaluator::default()).unwrap();
        let slewed = engine
            .run_with_slew(&QwmEvaluator::default(), 60e-12)
            .unwrap();
        // Slews recorded for every driven net.
        assert!(slewed.slews.len() >= 4);
        // A 60 ps input ramp must slow the first stage down relative to
        // the (near-)step analysis.
        let a = step.worst.unwrap().1;
        let b = slewed.worst.unwrap().1;
        assert!(b > a, "slew-aware {b} vs step {a}");
    }

    #[test]
    fn slew_aware_cache_hits_on_rerun() {
        let tech = Technology::cmosp35();
        let models = analytic_models(&tech);
        let nl = inverter_chain(&tech, 3, 10e-15);
        let mut engine = StaEngine::new(nl, &models, TransitionKind::Fall).unwrap();
        let r1 = engine
            .run_with_slew(&QwmEvaluator::default(), 20e-12)
            .unwrap();
        assert_eq!(r1.evaluations, 3);
        let r2 = engine
            .run_with_slew(&QwmEvaluator::default(), 20e-12)
            .unwrap();
        assert_eq!(r2.evaluations, 0, "identical seed slew is fully cached");
        // Different seed slew re-evaluates at least the first stage.
        let r3 = engine
            .run_with_slew(&QwmEvaluator::default(), 50e-12)
            .unwrap();
        assert!(r3.evaluations >= 1);
    }

    #[test]
    fn qwm_slew_tracks_spice_slew() {
        let tech = Technology::cmosp35();
        let models = analytic_models(&tech);
        let nl = inverter_chain(&tech, 2, 10e-15);
        let mut engine = StaEngine::new(nl, &models, TransitionKind::Fall).unwrap();
        let q = engine
            .run_with_slew(&QwmEvaluator::default(), 30e-12)
            .unwrap();
        let s = engine
            .run_with_slew(&SpiceEvaluator::default(), 30e-12)
            .unwrap();
        let (qa, sa) = (q.worst.unwrap().1, s.worst.unwrap().1);
        assert!((qa - sa).abs() / sa < 0.10, "qwm {qa} vs spice {sa}");
        // Output slews agree on the final net too.
        let net = q.worst.unwrap().0;
        let (qs, ss) = (q.slews[&net], s.slews[&net]);
        assert!((qs - ss).abs() / ss < 0.25, "slew qwm {qs} vs spice {ss}");
    }

    #[test]
    fn elmore_default_timing_reports_zero_slew() {
        let tech = Technology::cmosp35();
        let models = analytic_models(&tech);
        let nl = inverter_chain(&tech, 2, 10e-15);
        let engine = StaEngine::new(nl, &models, TransitionKind::Fall).unwrap();
        let part = &engine.graph().partitions()[0];
        let node = part
            .stage
            .node_by_name(engine.netlist().net_name(part.output_nets[0]))
            .unwrap();
        let m = crate::evaluator::ElmoreEvaluator
            .timing(&part.stage, &models, node, TransitionKind::Fall, 10e-12)
            .unwrap();
        assert_eq!(m.slew, 0.0);
        assert!(m.delay > 0.0);
    }
}

#[cfg(test)]
mod dual_tests {
    use super::*;
    use crate::evaluator::QwmEvaluator;
    use crate::graph::inverter_chain;
    use qwm_device::{analytic_models, Technology};

    #[test]
    fn dual_run_tracks_both_transitions() {
        let tech = Technology::cmosp35();
        let models = analytic_models(&tech);
        let nl = inverter_chain(&tech, 3, 10e-15);
        let mut engine = StaEngine::new(nl, &models, TransitionKind::Fall).unwrap();
        let (fall, rise) = engine.run_dual(&QwmEvaluator::default(), 5e-12).unwrap();
        let out = engine.netlist().find_net("n3").unwrap();
        let (af, ar) = (fall.arrivals[&out], rise.arrivals[&out]);
        assert!(af > 0.0 && ar > 0.0);
        // The wp = 2·wn inverter is not perfectly balanced: the two
        // polarities must differ measurably.
        assert!(
            (af - ar).abs() / af.max(ar) > 0.02,
            "fall {af} vs rise {ar}"
        );
        // Slews populated for both.
        assert!(fall.slews[&out] > 0.0);
        assert!(rise.slews[&out] > 0.0);
        // Second dual run is fully cached.
        let before = engine.total_evaluations();
        let _ = engine.run_dual(&QwmEvaluator::default(), 5e-12).unwrap();
        assert_eq!(engine.total_evaluations(), before);
    }
}
