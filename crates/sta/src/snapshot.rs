//! Commit-book snapshots: the public, owned image of the engine's
//! incremental state, for persistence (`qwm-store`) and warm restarts.
//!
//! The incremental flow's bitwise contract (see [`crate::incremental`])
//! makes the commit books *portable*: an engine rebuilt over the same
//! netlist and models, seeded with an exported book, continues exactly
//! where the exporting engine stopped — its next `run_incremental` is
//! an incremental run (not a cold full run) and its reports are
//! bitwise-identical to a never-restarted engine's. Arrivals and slews
//! are carried as `f64` and must round-trip through `f64::to_bits`
//! when serialized; any rounding voids the contract.
//!
//! Import validates shape (book length = net count, predecessor stage
//! indices in range, finite slews) but deliberately does **not** touch
//! the dirty sets: edits applied after an import stay dirty, which is
//! exactly what restore-then-replay needs.

use crate::corners::CommittedCorners;
use crate::engine::{NetCommit, StaEngine, NO_PRED};
use crate::incremental::CommittedBook;
use qwm_circuit::waveform::TransitionKind;
use qwm_device::corner::intern;
use qwm_num::{NumError, Result};

/// One net's committed `(arrival, slew, committing stage)`; `None` for
/// nets never committed (rails, floating nets).
pub type NetEntry = Option<(f64, f64, Option<usize>)>;

/// Owned snapshot of the single-corner commit book
/// ([`StaEngine::export_committed`] /
/// [`StaEngine::import_committed`]).
#[derive(Debug, Clone, PartialEq)]
pub struct CommitSnapshot {
    /// Name of the evaluator that produced the book. An engine only
    /// continues incrementally under the same evaluator name; a
    /// different one forces a full re-run, same as live.
    pub evaluator: String,
    /// Seed slew the book was computed at \[s\].
    pub input_slew: f64,
    /// Per-net commit entries, indexed by `NetId` order.
    pub book: Vec<NetEntry>,
}

/// Owned snapshot of the per-corner commit books
/// ([`StaEngine::export_committed_corners`] /
/// [`StaEngine::import_committed_corners`]).
#[derive(Debug, Clone, PartialEq)]
pub struct CornerCommitSnapshot {
    /// Corner names, in sweep order.
    pub corners: Vec<String>,
    /// Evaluator name per corner (same order as `corners`).
    pub evaluators: Vec<String>,
    /// Seed slew the books were computed at \[s\].
    pub input_slew: f64,
    /// One per-net book per corner (same order as `corners`).
    pub books: Vec<Vec<NetEntry>>,
}

fn export_book(book: &[Option<NetCommit>]) -> Vec<NetEntry> {
    book.iter()
        .map(|e| e.map(|(a, s, pred)| (a, s, (pred != NO_PRED).then_some(pred))))
        .collect()
}

fn import_book(
    context: &'static str,
    book: Vec<NetEntry>,
    nets: usize,
    stages: usize,
) -> Result<Vec<Option<NetCommit>>> {
    if book.len() != nets {
        return Err(NumError::InvalidInput {
            context,
            detail: format!("book covers {} nets but the netlist has {nets}", book.len()),
        });
    }
    book.into_iter()
        .map(|e| {
            Ok(match e {
                None => None,
                Some((a, s, pred)) => {
                    if !a.is_finite() || !s.is_finite() {
                        return Err(NumError::InvalidInput {
                            context,
                            detail: format!("non-finite commit entry ({a}, {s})"),
                        });
                    }
                    let pred = match pred {
                        None => NO_PRED,
                        Some(p) if p < stages => p,
                        Some(p) => {
                            return Err(NumError::InvalidInput {
                                context,
                                detail: format!(
                                    "committing stage {p} out of range ({stages} stages)"
                                ),
                            });
                        }
                    };
                    Some((a, s, pred))
                }
            })
        })
        .collect()
}

impl<'m> StaEngine<'m> {
    /// The transition direction this engine analyzes.
    pub fn direction(&self) -> TransitionKind {
        self.direction
    }

    /// Exports the single-corner commit book, or `None` before the
    /// first `run_incremental`.
    pub fn export_committed(&self) -> Option<CommitSnapshot> {
        self.committed.as_ref().map(|c| CommitSnapshot {
            evaluator: c.evaluator.to_string(),
            input_slew: c.input_slew,
            book: export_book(&c.book),
        })
    }

    /// Seeds the single-corner commit book from a snapshot, replacing
    /// any current book. Dirty marks are left alone — replay edits
    /// *after* importing to rebuild the dirty cone.
    ///
    /// # Errors
    ///
    /// [`NumError::InvalidInput`] when the book does not match this
    /// engine's netlist (wrong net count, out-of-range committing
    /// stage) or carries non-finite entries.
    pub fn import_committed(&mut self, snap: CommitSnapshot) -> Result<()> {
        let book = import_book(
            "StaEngine::import_committed",
            snap.book,
            self.netlist.net_count(),
            self.graph.len(),
        )?;
        self.committed = Some(CommittedBook {
            evaluator: intern(&snap.evaluator),
            input_slew: snap.input_slew,
            book,
        });
        Ok(())
    }

    /// Exports the per-corner commit books, or `None` before the first
    /// `run_incremental_corners`.
    pub fn export_committed_corners(&self) -> Option<CornerCommitSnapshot> {
        self.committed_corners
            .as_ref()
            .map(|c| CornerCommitSnapshot {
                corners: c.corners.iter().map(|s| s.to_string()).collect(),
                evaluators: c.evaluators.iter().map(|s| s.to_string()).collect(),
                input_slew: c.input_slew,
                books: c.books.iter().map(|b| export_book(b)).collect(),
            })
    }

    /// Seeds the per-corner commit books from a snapshot, replacing
    /// any current books. Dirty marks are left alone, as in
    /// [`StaEngine::import_committed`].
    ///
    /// # Errors
    ///
    /// [`NumError::InvalidInput`] on shape mismatches: corner/evaluator
    /// list lengths differing, a book count differing from the corner
    /// count, or any per-book failure as in
    /// [`StaEngine::import_committed`].
    pub fn import_committed_corners(&mut self, snap: CornerCommitSnapshot) -> Result<()> {
        let context = "StaEngine::import_committed_corners";
        if snap.evaluators.len() != snap.corners.len() || snap.books.len() != snap.corners.len() {
            return Err(NumError::InvalidInput {
                context,
                detail: format!(
                    "{} corners but {} evaluators and {} books",
                    snap.corners.len(),
                    snap.evaluators.len(),
                    snap.books.len()
                ),
            });
        }
        let nets = self.netlist.net_count();
        let stages = self.graph.len();
        let books = snap
            .books
            .into_iter()
            .map(|b| import_book(context, b, nets, stages))
            .collect::<Result<Vec<_>>>()?;
        self.committed_corners = Some(CommittedCorners {
            corners: snap.corners.iter().map(|s| intern(s)).collect(),
            evaluators: snap.evaluators.iter().map(|s| intern(s)).collect(),
            input_slew: snap.input_slew,
            books,
        });
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corners::CornerRun;
    use crate::evaluator::QwmEvaluator;
    use crate::graph::inverter_chain;
    use crate::report::golden_report;
    use qwm_device::corner::intern;
    use qwm_device::{analytic_models, Technology};

    fn chain_engine(models: &qwm_device::ModelSet) -> StaEngine<'_> {
        let tech = Technology::cmosp35();
        let nl = inverter_chain(&tech, 4, 10e-15);
        StaEngine::new(nl, models, TransitionKind::Fall).unwrap()
    }

    #[test]
    fn export_import_roundtrips_bitwise_and_stays_incremental() {
        let tech = Technology::cmosp35();
        let models = analytic_models(&tech);
        let eval = QwmEvaluator::default();

        let mut warm = chain_engine(&models);
        warm.set_input_slew(20e-12).unwrap();
        warm.run_incremental(&eval).unwrap();
        let snap = warm.export_committed().expect("book after a run");

        // A rebuilt engine seeded with the snapshot does NOT fall back
        // to a cold full run, and with nothing dirty it does no work.
        let mut restored = chain_engine(&models);
        restored.set_input_slew(20e-12).unwrap();
        restored.import_committed(snap.clone()).unwrap();
        restored.run_incremental(&eval).unwrap();
        let stats = restored.incremental_stats();
        assert!(
            !stats.full_run,
            "imported book must keep the run incremental"
        );
        assert_eq!(stats.evaluated_stages, 0, "nothing is dirty");

        // Export of the import is bitwise-identical.
        assert_eq!(restored.export_committed().unwrap(), snap);

        // The restart contract: apply the same edit to both engines;
        // the post-edit incremental reports are byte-identical in the
        // golden rendering — including the per-run evaluation count,
        // because on a chain the edit changes every downstream slew, so
        // every dirty-cone arc is a cache miss in both engines.
        let w = warm.netlist().devices()[1].geom.w;
        warm.resize_device(1, 1.5 * w).unwrap();
        restored.resize_device(1, 1.5 * w).unwrap();
        let r1 = warm.run_incremental(&eval).unwrap();
        let r2 = restored.run_incremental(&eval).unwrap();
        assert!(!restored.incremental_stats().full_run);
        assert_eq!(
            golden_report(&r1, warm.netlist()),
            golden_report(&r2, restored.netlist())
        );
        assert_eq!(
            warm.export_committed().unwrap(),
            restored.export_committed().unwrap()
        );
    }

    #[test]
    fn corner_snapshot_roundtrips() {
        let tech = Technology::cmosp35();
        let models = analytic_models(&tech);
        let eval = QwmEvaluator::default();
        let runs = [
            CornerRun {
                name: intern("tt"),
                models: &models,
                evaluator: &eval,
            },
            CornerRun {
                name: intern("ss"),
                models: &models,
                evaluator: &eval,
            },
        ];
        let mut warm = chain_engine(&models);
        warm.set_input_slew(20e-12).unwrap();
        warm.run_incremental_corners(&runs).unwrap();
        let snap = warm.export_committed_corners().expect("corner books");
        assert_eq!(snap.corners, vec!["tt", "ss"]);

        let mut restored = chain_engine(&models);
        restored.set_input_slew(20e-12).unwrap();
        restored.import_committed_corners(snap.clone()).unwrap();
        restored.run_incremental_corners(&runs).unwrap();
        assert!(!restored.incremental_stats().full_run);
        assert_eq!(restored.export_committed_corners().unwrap(), snap);

        // Same edit on both engines → bitwise-identical corner reports.
        let w = warm.netlist().devices()[1].geom.w;
        warm.resize_device(1, 1.5 * w).unwrap();
        restored.resize_device(1, 1.5 * w).unwrap();
        let rep1 = warm.run_incremental_corners(&runs).unwrap();
        let rep2 = restored.run_incremental_corners(&runs).unwrap();
        assert!(!restored.incremental_stats().full_run);
        assert_eq!(rep1.corners, rep2.corners);
        assert_eq!(rep1.reports.len(), rep2.reports.len());
        for (a, b) in rep1.reports.iter().zip(rep2.reports.iter()) {
            assert_eq!(
                golden_report(a, warm.netlist()),
                golden_report(b, restored.netlist())
            );
        }
        assert_eq!(
            warm.export_committed_corners().unwrap(),
            restored.export_committed_corners().unwrap()
        );
    }

    #[test]
    fn import_validates_shape() {
        let tech = Technology::cmosp35();
        let models = analytic_models(&tech);
        let mut e = chain_engine(&models);
        let wrong_len = CommitSnapshot {
            evaluator: "elmore".into(),
            input_slew: 0.0,
            book: vec![None; 3],
        };
        assert!(e.import_committed(wrong_len).is_err());
        let nets = e.netlist().net_count();
        let bad_pred = CommitSnapshot {
            evaluator: "elmore".into(),
            input_slew: 0.0,
            book: (0..nets).map(|_| Some((1e-12, 1e-12, Some(999)))).collect(),
        };
        assert!(e.import_committed(bad_pred).is_err());
        let non_finite = CommitSnapshot {
            evaluator: "elmore".into(),
            input_slew: 0.0,
            book: (0..nets).map(|_| Some((f64::NAN, 1e-12, None))).collect(),
        };
        assert!(e.import_committed(non_finite).is_err());
    }
}
