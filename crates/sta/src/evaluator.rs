//! Pluggable per-stage delay evaluators.
//!
//! The STA engine asks one question of a stage: *worst-case output fall
//! (or rise) delay under simultaneous step inputs*. Three evaluators
//! answer it, mirroring the methodology ladder of the paper's §II:
//!
//! * [`ElmoreEvaluator`] — switch-level (Crystal/IRSIM class):
//!   transistors become effective resistors, the chain becomes an RC
//!   ladder, delay is `ln 2 ·` Elmore. Fast, crude.
//! * [`QwmEvaluator`] — the paper's method: piecewise quadratic waveform
//!   matching over the extracted chain.
//! * [`SpiceEvaluator`] — the golden reference: full fixed-step
//!   transient.

use qwm_circuit::stage::{DeviceKind, LogicStage, NodeId, NodeKind};
use qwm_circuit::waveform::{measure_transition, TimingMetrics, TransitionKind, Waveform};
use qwm_core::evaluate::{evaluate, QwmConfig};
use qwm_device::model::{Geometry, ModelSet, Polarity, TermVoltage};
use qwm_num::{NumError, Result};
use qwm_spice::engine::{simulate, TransientConfig};

/// A stage-delay oracle.
pub trait StageEvaluator: Send + Sync {
    /// Evaluator name for reports.
    fn name(&self) -> &'static str;

    /// Worst-case 50 % delay of `output` for the given transition under
    /// simultaneous step inputs from a precharged initial state.
    ///
    /// # Errors
    ///
    /// Implementations report unreachable levels, inextractable chains
    /// or convergence failures.
    fn delay(
        &self,
        stage: &LogicStage,
        models: &ModelSet,
        output: NodeId,
        direction: TransitionKind,
    ) -> Result<f64>;

    /// Slew-aware timing: delay measured from the switching inputs' 50 %
    /// point when they ramp with the given 10–90 % `input_slew`, plus
    /// the output's own 10–90 % transition time.
    ///
    /// The default ignores the input slew and reports a zero output slew
    /// (adequate for delay-only evaluators like Elmore).
    ///
    /// # Errors
    ///
    /// Same contract as [`StageEvaluator::delay`].
    fn timing(
        &self,
        stage: &LogicStage,
        models: &ModelSet,
        output: NodeId,
        direction: TransitionKind,
        _input_slew: f64,
    ) -> Result<TimingMetrics> {
        Ok(TimingMetrics {
            delay: self.delay(stage, models, output, direction)?,
            slew: 0.0,
        })
    }
}

/// Converts a 10–90 % slew into the equivalent full ramp duration and
/// builds the sensitized stimulus with ramping switching inputs.
///
/// Returns `(inputs, initial voltages, t_ref)` where `t_ref` is the
/// switching inputs' 50 % instant.
///
/// # Errors
///
/// Propagates chain-extraction failures.
pub fn sensitized_setup_with_slew(
    stage: &LogicStage,
    models: &ModelSet,
    output: NodeId,
    direction: TransitionKind,
    input_slew: f64,
) -> Result<(Vec<Waveform>, Vec<f64>, f64)> {
    let vdd = models.tech().vdd;
    let chain = qwm_core::chain::Chain::extract_worst(stage, output, direction)?;
    let gating = chain.gating_inputs();
    let (g0, g1, v_init) = match direction {
        TransitionKind::Fall => (0.0, vdd, vdd),
        TransitionKind::Rise => (vdd, 0.0, 0.0),
    };
    // 10–90 % covers 80 % of the swing: full ramp = slew / 0.8.
    let ramp = (input_slew / 0.8).max(1e-12);
    let inputs: Vec<Waveform> = (0..stage.inputs().len())
        .map(|i| {
            if gating.contains(&qwm_circuit::InputId(i)) {
                Waveform::ramp(0.0, ramp, g0, g1)
            } else {
                Waveform::constant(g0)
            }
        })
        .collect();
    let init: Vec<f64> = (0..stage.node_count())
        .map(|i| match stage.node(NodeId(i)).kind {
            NodeKind::Supply => vdd,
            NodeKind::Ground => 0.0,
            NodeKind::Internal => v_init,
        })
        .collect();
    Ok((inputs, init, 0.5 * ramp))
}

/// Canonical worst-case stimulus: every input steps at `t = 0` in the
/// direction that activates the conduction network, and internal nodes
/// start precharged against the transition.
pub fn worst_case_setup(
    stage: &LogicStage,
    models: &ModelSet,
    direction: TransitionKind,
) -> (Vec<Waveform>, Vec<f64>) {
    let vdd = models.tech().vdd;
    let (g0, g1, v_init) = match direction {
        TransitionKind::Fall => (0.0, vdd, vdd),
        TransitionKind::Rise => (vdd, 0.0, 0.0),
    };
    let inputs = vec![Waveform::step(0.0, g0, g1); stage.inputs().len()];
    let init: Vec<f64> = (0..stage.node_count())
        .map(|i| match stage.node(NodeId(i)).kind {
            NodeKind::Supply => vdd,
            NodeKind::Ground => 0.0,
            NodeKind::Internal => v_init,
        })
        .collect();
    (inputs, init)
}

/// Path-sensitized worst-case stimulus: only the inputs gating the
/// worst chain switch; every other input is held at its non-conducting
/// value so side branches stay off (standard single-path sensitization
/// for complex gates such as AOI). Returns the stimulus and the
/// extracted chain.
///
/// # Errors
///
/// Propagates chain-extraction failures.
pub fn sensitized_setup(
    stage: &LogicStage,
    models: &ModelSet,
    output: NodeId,
    direction: TransitionKind,
) -> Result<(Vec<Waveform>, Vec<f64>, qwm_core::chain::Chain)> {
    let vdd = models.tech().vdd;
    let chain = qwm_core::chain::Chain::extract_worst(stage, output, direction)?;
    let gating = chain.gating_inputs();
    let (g0, g1, v_init) = match direction {
        TransitionKind::Fall => (0.0, vdd, vdd),
        TransitionKind::Rise => (vdd, 0.0, 0.0),
    };
    let inputs: Vec<Waveform> = (0..stage.inputs().len())
        .map(|i| {
            if gating.contains(&qwm_circuit::InputId(i)) {
                Waveform::step(0.0, g0, g1)
            } else {
                Waveform::constant(g0)
            }
        })
        .collect();
    let init: Vec<f64> = (0..stage.node_count())
        .map(|i| match stage.node(NodeId(i)).kind {
            NodeKind::Supply => vdd,
            NodeKind::Ground => 0.0,
            NodeKind::Internal => v_init,
        })
        .collect();
    Ok((inputs, init, chain))
}

/// QWM-backed evaluator (the paper's configuration).
#[derive(Debug, Clone, Default)]
pub struct QwmEvaluator {
    /// Evaluator configuration passed through to the QWM engine.
    pub config: QwmConfig,
}

impl StageEvaluator for QwmEvaluator {
    fn name(&self) -> &'static str {
        "qwm"
    }

    fn delay(
        &self,
        stage: &LogicStage,
        models: &ModelSet,
        output: NodeId,
        direction: TransitionKind,
    ) -> Result<f64> {
        let _span = qwm_obs::span!("sta.eval.qwm");
        let (inputs, init, _chain) = sensitized_setup(stage, models, output, direction)?;
        let r = evaluate(
            stage,
            models,
            &inputs,
            &init,
            output,
            direction,
            &self.config,
        )?;
        r.delay_50(models.tech().vdd, 0.0)
            .ok_or(NumError::InvalidInput {
                context: "QwmEvaluator::delay",
                detail: "output never crossed 50%".to_string(),
            })
    }

    fn timing(
        &self,
        stage: &LogicStage,
        models: &ModelSet,
        output: NodeId,
        direction: TransitionKind,
        input_slew: f64,
    ) -> Result<TimingMetrics> {
        let _span = qwm_obs::span!("sta.eval.qwm");
        let vdd = models.tech().vdd;
        let (inputs, init, t_ref) =
            sensitized_setup_with_slew(stage, models, output, direction, input_slew)?;
        let r = evaluate(
            stage,
            models,
            &inputs,
            &init,
            output,
            direction,
            &self.config,
        )?;
        let delay = r.delay_50(vdd, t_ref).ok_or(NumError::InvalidInput {
            context: "QwmEvaluator::timing",
            detail: "output never crossed 50%".to_string(),
        })?;
        let slew = r.slew(vdd).ok_or(NumError::InvalidInput {
            context: "QwmEvaluator::timing",
            detail: "output never crossed 10/90%".to_string(),
        })?;
        Ok(TimingMetrics { delay, slew })
    }
}

/// Switch-level evaluator: `ln 2 ·` Elmore over effective resistances.
#[derive(Debug, Clone, Default)]
pub struct ElmoreEvaluator;

impl ElmoreEvaluator {
    /// Effective switched-on resistance of a transistor: the secant
    /// resistance `Vdd/2 ÷ I(Vds = Vdd/2, Vgs = Vdd)` of the conduction
    /// device, the textbook calibration.
    fn effective_resistance(models: &ModelSet, kind: DeviceKind, geom: &Geometry) -> Result<f64> {
        let vdd = models.tech().vdd;
        let (model, tv) = match kind {
            DeviceKind::Nmos => (
                models.for_polarity(Polarity::Nmos),
                TermVoltage::new(vdd, vdd / 2.0, 0.0),
            ),
            DeviceKind::Pmos => (
                models.for_polarity(Polarity::Pmos),
                TermVoltage::new(0.0, vdd, vdd / 2.0),
            ),
            DeviceKind::Wire => {
                return Ok(qwm_device::caps::wire_res(models.tech(), geom.w, geom.l))
            }
        };
        let i = model.iv(geom, tv)?.abs();
        if i <= 0.0 {
            return Err(NumError::InvalidInput {
                context: "ElmoreEvaluator",
                detail: "device carries no current when on".to_string(),
            });
        }
        Ok(vdd / 2.0 / i)
    }
}

impl StageEvaluator for ElmoreEvaluator {
    fn name(&self) -> &'static str {
        "elmore"
    }

    fn delay(
        &self,
        stage: &LogicStage,
        models: &ModelSet,
        output: NodeId,
        direction: TransitionKind,
    ) -> Result<f64> {
        let _span = qwm_obs::span!("sta.eval.elmore");
        let chain = qwm_core::chain::Chain::extract_worst(stage, output, direction)?;
        let vdd = models.tech().vdd;
        // RC ladder: resistor k from the chain, cap at each chain node
        // evaluated at mid-swing.
        let mut tree = qwm_interconnect::rc::RcTree::new(0.0);
        let mut at = 0;
        for (k, elem) in chain.elements.iter().enumerate() {
            let r = Self::effective_resistance(models, elem.kind, &elem.geom)?;
            let c = stage.node_cap(chain.nodes[k + 1], models, vdd / 2.0);
            at = tree.add_node(at, r, c)?;
        }
        Ok(std::f64::consts::LN_2 * tree.elmore(at))
    }
}

/// SPICE-backed golden evaluator.
#[derive(Debug, Clone)]
pub struct SpiceEvaluator {
    /// Transient configuration template (`t_stop` is grown automatically
    /// until the 50 % crossing is captured).
    pub config: TransientConfig,
}

impl Default for SpiceEvaluator {
    fn default() -> Self {
        SpiceEvaluator {
            config: TransientConfig::hspice_1ps(2e-9),
        }
    }
}

impl StageEvaluator for SpiceEvaluator {
    fn name(&self) -> &'static str {
        "spice"
    }

    fn delay(
        &self,
        stage: &LogicStage,
        models: &ModelSet,
        output: NodeId,
        direction: TransitionKind,
    ) -> Result<f64> {
        let _span = qwm_obs::span!("sta.eval.spice");
        let (inputs, init, _chain) = sensitized_setup(stage, models, output, direction)?;
        let vdd = models.tech().vdd;
        let mut cfg = self.config;
        for _ in 0..6 {
            let r = simulate(stage, models, &inputs, &init, &cfg)?;
            let w = r.waveform(output)?;
            let falling = direction == TransitionKind::Fall;
            if let Some(t) = w.crossing(vdd / 2.0, !falling) {
                return Ok(t);
            }
            cfg.t_stop *= 4.0;
        }
        Err(NumError::NoConvergence {
            method: "SpiceEvaluator::delay (no 50% crossing)",
            iterations: 6,
            residual: cfg.t_stop,
        })
    }

    fn timing(
        &self,
        stage: &LogicStage,
        models: &ModelSet,
        output: NodeId,
        direction: TransitionKind,
        input_slew: f64,
    ) -> Result<TimingMetrics> {
        let _span = qwm_obs::span!("sta.eval.spice");
        let vdd = models.tech().vdd;
        let (inputs, init, t_ref) =
            sensitized_setup_with_slew(stage, models, output, direction, input_slew)?;
        let mut cfg = self.config;
        for _ in 0..6 {
            let r = simulate(stage, models, &inputs, &init, &cfg)?;
            let w = r.waveform(output)?;
            if let Ok(m) = measure_transition(&w, direction, t_ref, vdd) {
                return Ok(m);
            }
            cfg.t_stop *= 4.0;
        }
        Err(NumError::NoConvergence {
            method: "SpiceEvaluator::timing (levels unreached)",
            iterations: 6,
            residual: cfg.t_stop,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qwm_circuit::cells;
    use qwm_device::{analytic_models, Technology};

    fn setup() -> (Technology, ModelSet) {
        let tech = Technology::cmosp35();
        (tech.clone(), analytic_models(&tech))
    }

    #[test]
    fn three_evaluators_agree_on_ordering() {
        let (tech, models) = setup();
        let evaluators: Vec<Box<dyn StageEvaluator>> = vec![
            Box::new(ElmoreEvaluator),
            Box::new(QwmEvaluator::default()),
            Box::new(SpiceEvaluator::default()),
        ];
        for ev in &evaluators {
            let mut prev = 0.0;
            for n in 2..=4 {
                let g = cells::nand(&tech, n, cells::DEFAULT_LOAD).unwrap();
                let out = g.node_by_name("out").unwrap();
                let d = ev.delay(&g, &models, out, TransitionKind::Fall).unwrap();
                assert!(d > prev, "{}: nand{n} slower than nand{}", ev.name(), n - 1);
                prev = d;
            }
        }
    }

    #[test]
    fn qwm_tracks_spice_on_gates() {
        let (tech, models) = setup();
        let qwm = QwmEvaluator::default();
        let spice = SpiceEvaluator::default();
        for n in [1usize, 3] {
            let g = cells::nand(&tech, n.max(1), cells::DEFAULT_LOAD).unwrap();
            let out = g.node_by_name("out").unwrap();
            let dq = qwm.delay(&g, &models, out, TransitionKind::Fall).unwrap();
            let ds = spice.delay(&g, &models, out, TransitionKind::Fall).unwrap();
            assert!(
                (dq - ds).abs() / ds < 0.12,
                "nand{n}: qwm {dq} vs spice {ds}"
            );
        }
    }

    #[test]
    fn elmore_is_the_crude_one() {
        // Elmore should be in the right decade but not necessarily
        // within 10%.
        let (tech, models) = setup();
        let g = cells::nand(&tech, 3, cells::DEFAULT_LOAD).unwrap();
        let out = g.node_by_name("out").unwrap();
        let de = ElmoreEvaluator
            .delay(&g, &models, out, TransitionKind::Fall)
            .unwrap();
        let ds = SpiceEvaluator::default()
            .delay(&g, &models, out, TransitionKind::Fall)
            .unwrap();
        let ratio = de / ds;
        assert!(ratio > 0.2 && ratio < 5.0, "ratio {ratio}");
    }

    #[test]
    fn rise_delay_through_inverter() {
        let (tech, models) = setup();
        let g = cells::inverter(&tech, cells::DEFAULT_LOAD).unwrap();
        let out = g.node_by_name("out").unwrap();
        let dq = QwmEvaluator::default()
            .delay(&g, &models, out, TransitionKind::Rise)
            .unwrap();
        let ds = SpiceEvaluator::default()
            .delay(&g, &models, out, TransitionKind::Rise)
            .unwrap();
        assert!((dq - ds).abs() / ds < 0.12, "qwm {dq} vs spice {ds}");
    }

    #[test]
    fn aoi21_sensitized_delay_tracks_spice() {
        // Branching pull-down: the worst path (series a·b) is sensitized
        // with c held low; both evaluators must agree on that scenario.
        let (_tech, models) = setup();
        let g = cells::aoi21(&Technology::cmosp35(), cells::DEFAULT_LOAD).unwrap();
        let out = g.node_by_name("out").unwrap();
        let dq = QwmEvaluator::default()
            .delay(&g, &models, out, TransitionKind::Fall)
            .unwrap();
        let ds = SpiceEvaluator::default()
            .delay(&g, &models, out, TransitionKind::Fall)
            .unwrap();
        assert!((dq - ds).abs() / ds < 0.10, "qwm {dq} vs spice {ds}");
        // And the rise direction through the series-c pull-up.
        let dqr = QwmEvaluator::default()
            .delay(&g, &models, out, TransitionKind::Rise)
            .unwrap();
        let dsr = SpiceEvaluator::default()
            .delay(&g, &models, out, TransitionKind::Rise)
            .unwrap();
        assert!(
            (dqr - dsr).abs() / dsr < 0.12,
            "rise qwm {dqr} vs spice {dsr}"
        );
    }

    #[test]
    fn nand_rise_now_supported_via_worst_path() {
        // Parallel pull-ups used to be inextractable; extract_worst picks
        // one branch and sensitizes only its input.
        let (_tech, models) = setup();
        let g = cells::nand(&Technology::cmosp35(), 2, cells::DEFAULT_LOAD).unwrap();
        let out = g.node_by_name("out").unwrap();
        let dq = QwmEvaluator::default()
            .delay(&g, &models, out, TransitionKind::Rise)
            .unwrap();
        let ds = SpiceEvaluator::default()
            .delay(&g, &models, out, TransitionKind::Rise)
            .unwrap();
        assert!((dq - ds).abs() / ds < 0.12, "qwm {dq} vs spice {ds}");
    }

    #[test]
    fn worst_case_setup_shapes() {
        let (tech, models) = setup();
        let g = cells::nand(&tech, 2, cells::DEFAULT_LOAD).unwrap();
        let (inputs, init) = worst_case_setup(&g, &models, TransitionKind::Fall);
        assert_eq!(inputs.len(), 2);
        assert_eq!(init.len(), g.node_count());
        assert_eq!(inputs[0].final_value(), tech.vdd);
        let out = g.node_by_name("out").unwrap();
        assert_eq!(init[out.0], tech.vdd);
    }
}
