//! Pluggable per-stage delay evaluators.
//!
//! The STA engine asks one question of a stage: *worst-case output fall
//! (or rise) delay under simultaneous step inputs*. Three evaluators
//! answer it, mirroring the methodology ladder of the paper's §II:
//!
//! * [`ElmoreEvaluator`] — switch-level (Crystal/IRSIM class):
//!   transistors become effective resistors, the chain becomes an RC
//!   ladder, delay is `ln 2 ·` Elmore. Fast, crude.
//! * [`QwmEvaluator`] — the paper's method: piecewise quadratic waveform
//!   matching over the extracted chain.
//! * [`SpiceEvaluator`] — the golden reference: full fixed-step
//!   transient.
//!
//! A fourth, [`FallbackEvaluator`], is not a new method but a
//! *robustness wrapper*: it descends the ladder QWM → damped-QWM retry
//! → adaptive transient → fixed-step transient → Elmore bound until one
//! rung produces an answer, recording a [`Degradation`] provenance for
//! every arc that did not come from plain QWM.

use qwm_circuit::stage::{DeviceKind, LogicStage, NodeId, NodeKind};
use qwm_circuit::waveform::{measure_transition, TimingMetrics, TransitionKind, Waveform};
use qwm_core::evaluate::{evaluate, QwmConfig};
use qwm_device::model::{Geometry, ModelSet, Polarity, TermVoltage};
use qwm_num::{NumError, Result};
use qwm_spice::adaptive::{simulate_adaptive, AdaptiveConfig};
use qwm_spice::engine::{simulate, TransientConfig};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// A stage-delay oracle.
pub trait StageEvaluator: Send + Sync {
    /// Evaluator name for reports.
    fn name(&self) -> &'static str;

    /// Worst-case 50 % delay of `output` for the given transition under
    /// simultaneous step inputs from a precharged initial state.
    ///
    /// # Errors
    ///
    /// Implementations report unreachable levels, inextractable chains
    /// or convergence failures.
    fn delay(
        &self,
        stage: &LogicStage,
        models: &ModelSet,
        output: NodeId,
        direction: TransitionKind,
    ) -> Result<f64>;

    /// Slew-aware timing: delay measured from the switching inputs' 50 %
    /// point when they ramp with the given 10–90 % `input_slew`, plus
    /// the output's own 10–90 % transition time.
    ///
    /// The default ignores the input slew and reports a zero output slew
    /// (adequate for delay-only evaluators like Elmore).
    ///
    /// # Errors
    ///
    /// Same contract as [`StageEvaluator::delay`].
    fn timing(
        &self,
        stage: &LogicStage,
        models: &ModelSet,
        output: NodeId,
        direction: TransitionKind,
        _input_slew: f64,
    ) -> Result<TimingMetrics> {
        Ok(TimingMetrics {
            delay: self.delay(stage, models, output, direction)?,
            slew: 0.0,
        })
    }

    /// Drains the degradation provenance accumulated since the last
    /// call. Only degrading evaluators ([`FallbackEvaluator`]) record
    /// anything; the default is always empty.
    fn take_degradations(&self) -> Vec<Degradation> {
        Vec::new()
    }
}

/// Converts a 10–90 % slew into the equivalent full ramp duration and
/// builds the sensitized stimulus with ramping switching inputs.
///
/// Returns `(inputs, initial voltages, t_ref)` where `t_ref` is the
/// switching inputs' 50 % instant.
///
/// # Errors
///
/// Propagates chain-extraction failures.
pub fn sensitized_setup_with_slew(
    stage: &LogicStage,
    models: &ModelSet,
    output: NodeId,
    direction: TransitionKind,
    input_slew: f64,
) -> Result<(Vec<Waveform>, Vec<f64>, f64)> {
    let vdd = models.tech().vdd;
    let chain = qwm_core::chain::Chain::extract_worst(stage, output, direction)?;
    let gating = chain.gating_inputs();
    let (g0, g1, v_init) = match direction {
        TransitionKind::Fall => (0.0, vdd, vdd),
        TransitionKind::Rise => (vdd, 0.0, 0.0),
    };
    // 10–90 % covers 80 % of the swing: full ramp = slew / 0.8.
    let ramp = (input_slew / 0.8).max(1e-12);
    // Interned constructors: identical-slew arcs across the netlist
    // share one parsed piecewise input instead of re-allocating it
    // per arc (DESIGN.md §16).
    let inputs: Vec<Waveform> = (0..stage.inputs().len())
        .map(|i| {
            if gating.contains(&qwm_circuit::InputId(i)) {
                Waveform::ramp_interned(0.0, ramp, g0, g1)
            } else {
                Waveform::constant_interned(g0)
            }
        })
        .collect();
    let init: Vec<f64> = (0..stage.node_count())
        .map(|i| match stage.node(NodeId(i)).kind {
            NodeKind::Supply => vdd,
            NodeKind::Ground => 0.0,
            NodeKind::Internal => v_init,
        })
        .collect();
    Ok((inputs, init, 0.5 * ramp))
}

/// Canonical worst-case stimulus: every input steps at `t = 0` in the
/// direction that activates the conduction network, and internal nodes
/// start precharged against the transition.
pub fn worst_case_setup(
    stage: &LogicStage,
    models: &ModelSet,
    direction: TransitionKind,
) -> (Vec<Waveform>, Vec<f64>) {
    let vdd = models.tech().vdd;
    let (g0, g1, v_init) = match direction {
        TransitionKind::Fall => (0.0, vdd, vdd),
        TransitionKind::Rise => (vdd, 0.0, 0.0),
    };
    let inputs = vec![Waveform::step_interned(0.0, g0, g1); stage.inputs().len()];
    let init: Vec<f64> = (0..stage.node_count())
        .map(|i| match stage.node(NodeId(i)).kind {
            NodeKind::Supply => vdd,
            NodeKind::Ground => 0.0,
            NodeKind::Internal => v_init,
        })
        .collect();
    (inputs, init)
}

/// Path-sensitized worst-case stimulus: only the inputs gating the
/// worst chain switch; every other input is held at its non-conducting
/// value so side branches stay off (standard single-path sensitization
/// for complex gates such as AOI). Returns the stimulus and the
/// extracted chain.
///
/// # Errors
///
/// Propagates chain-extraction failures.
pub fn sensitized_setup(
    stage: &LogicStage,
    models: &ModelSet,
    output: NodeId,
    direction: TransitionKind,
) -> Result<(Vec<Waveform>, Vec<f64>, qwm_core::chain::Chain)> {
    let vdd = models.tech().vdd;
    let chain = qwm_core::chain::Chain::extract_worst(stage, output, direction)?;
    let gating = chain.gating_inputs();
    let (g0, g1, v_init) = match direction {
        TransitionKind::Fall => (0.0, vdd, vdd),
        TransitionKind::Rise => (vdd, 0.0, 0.0),
    };
    let inputs: Vec<Waveform> = (0..stage.inputs().len())
        .map(|i| {
            if gating.contains(&qwm_circuit::InputId(i)) {
                Waveform::step_interned(0.0, g0, g1)
            } else {
                Waveform::constant_interned(g0)
            }
        })
        .collect();
    let init: Vec<f64> = (0..stage.node_count())
        .map(|i| match stage.node(NodeId(i)).kind {
            NodeKind::Supply => vdd,
            NodeKind::Ground => 0.0,
            NodeKind::Internal => v_init,
        })
        .collect();
    Ok((inputs, init, chain))
}

/// QWM-backed evaluator (the paper's configuration).
#[derive(Debug, Clone, Default)]
pub struct QwmEvaluator {
    /// Evaluator configuration passed through to the QWM engine.
    pub config: QwmConfig,
}

impl StageEvaluator for QwmEvaluator {
    fn name(&self) -> &'static str {
        "qwm"
    }

    fn delay(
        &self,
        stage: &LogicStage,
        models: &ModelSet,
        output: NodeId,
        direction: TransitionKind,
    ) -> Result<f64> {
        let _span = qwm_obs::span!("sta.eval.qwm");
        let (inputs, init, _chain) = sensitized_setup(stage, models, output, direction)?;
        let r = evaluate(
            stage,
            models,
            &inputs,
            &init,
            output,
            direction,
            &self.config,
        )?;
        r.delay_50(models.tech().vdd, 0.0)
            .ok_or(NumError::InvalidInput {
                context: "QwmEvaluator::delay",
                detail: "output never crossed 50%".to_string(),
            })
    }

    fn timing(
        &self,
        stage: &LogicStage,
        models: &ModelSet,
        output: NodeId,
        direction: TransitionKind,
        input_slew: f64,
    ) -> Result<TimingMetrics> {
        let _span = qwm_obs::span!("sta.eval.qwm");
        let vdd = models.tech().vdd;
        let (inputs, init, t_ref) =
            sensitized_setup_with_slew(stage, models, output, direction, input_slew)?;
        let r = evaluate(
            stage,
            models,
            &inputs,
            &init,
            output,
            direction,
            &self.config,
        )?;
        let delay = r.delay_50(vdd, t_ref).ok_or(NumError::InvalidInput {
            context: "QwmEvaluator::timing",
            detail: "output never crossed 50%".to_string(),
        })?;
        let slew = r.slew(vdd).ok_or(NumError::InvalidInput {
            context: "QwmEvaluator::timing",
            detail: "output never crossed 10/90%".to_string(),
        })?;
        Ok(TimingMetrics { delay, slew })
    }
}

/// Switch-level evaluator: `ln 2 ·` Elmore over effective resistances.
#[derive(Debug, Clone, Default)]
pub struct ElmoreEvaluator;

impl ElmoreEvaluator {
    /// Effective switched-on resistance of a transistor: the secant
    /// resistance `Vdd/2 ÷ I(Vds = Vdd/2, Vgs = Vdd)` of the conduction
    /// device, the textbook calibration.
    fn effective_resistance(models: &ModelSet, kind: DeviceKind, geom: &Geometry) -> Result<f64> {
        let vdd = models.tech().vdd;
        let (model, tv) = match kind {
            DeviceKind::Nmos => (
                models.for_polarity(Polarity::Nmos),
                TermVoltage::new(vdd, vdd / 2.0, 0.0),
            ),
            DeviceKind::Pmos => (
                models.for_polarity(Polarity::Pmos),
                TermVoltage::new(0.0, vdd, vdd / 2.0),
            ),
            DeviceKind::Wire => {
                return Ok(qwm_device::caps::wire_res(models.tech(), geom.w, geom.l))
            }
        };
        let i = model.iv(geom, tv)?.abs();
        if i <= 0.0 {
            return Err(NumError::InvalidInput {
                context: "ElmoreEvaluator",
                detail: "device carries no current when on".to_string(),
            });
        }
        Ok(vdd / 2.0 / i)
    }
}

impl StageEvaluator for ElmoreEvaluator {
    fn name(&self) -> &'static str {
        "elmore"
    }

    fn delay(
        &self,
        stage: &LogicStage,
        models: &ModelSet,
        output: NodeId,
        direction: TransitionKind,
    ) -> Result<f64> {
        let _span = qwm_obs::span!("sta.eval.elmore");
        if let Some(e) = qwm_fault::check("sta.elmore") {
            return Err(e);
        }
        let chain = qwm_core::chain::Chain::extract_worst(stage, output, direction)?;
        let vdd = models.tech().vdd;
        // RC ladder: resistor k from the chain, cap at each chain node
        // evaluated at mid-swing.
        let mut tree = qwm_interconnect::rc::RcTree::new(0.0);
        let mut at = 0;
        for (k, elem) in chain.elements.iter().enumerate() {
            let r = Self::effective_resistance(models, elem.kind, &elem.geom)?;
            let c = stage.node_cap(chain.nodes[k + 1], models, vdd / 2.0);
            at = tree.add_node(at, r, c)?;
        }
        Ok(std::f64::consts::LN_2 * tree.elmore(at))
    }
}

/// SPICE-backed golden evaluator.
#[derive(Debug, Clone)]
pub struct SpiceEvaluator {
    /// Transient configuration template (`t_stop` is grown automatically
    /// until the 50 % crossing is captured).
    pub config: TransientConfig,
}

impl Default for SpiceEvaluator {
    fn default() -> Self {
        SpiceEvaluator {
            config: TransientConfig::hspice_1ps(2e-9),
        }
    }
}

impl StageEvaluator for SpiceEvaluator {
    fn name(&self) -> &'static str {
        "spice"
    }

    fn delay(
        &self,
        stage: &LogicStage,
        models: &ModelSet,
        output: NodeId,
        direction: TransitionKind,
    ) -> Result<f64> {
        let _span = qwm_obs::span!("sta.eval.spice");
        let (inputs, init, _chain) = sensitized_setup(stage, models, output, direction)?;
        let vdd = models.tech().vdd;
        let mut cfg = self.config;
        for _ in 0..6 {
            let r = simulate(stage, models, &inputs, &init, &cfg)?;
            let w = r.waveform(output)?;
            let falling = direction == TransitionKind::Fall;
            if let Some(t) = w.crossing(vdd / 2.0, !falling) {
                return Ok(t);
            }
            cfg.t_stop *= 4.0;
        }
        Err(NumError::NoConvergence {
            method: "SpiceEvaluator::delay (no 50% crossing)",
            iterations: 6,
            residual: cfg.t_stop,
        })
    }

    fn timing(
        &self,
        stage: &LogicStage,
        models: &ModelSet,
        output: NodeId,
        direction: TransitionKind,
        input_slew: f64,
    ) -> Result<TimingMetrics> {
        let _span = qwm_obs::span!("sta.eval.spice");
        let vdd = models.tech().vdd;
        let (inputs, init, t_ref) =
            sensitized_setup_with_slew(stage, models, output, direction, input_slew)?;
        let mut cfg = self.config;
        for _ in 0..6 {
            let r = simulate(stage, models, &inputs, &init, &cfg)?;
            let w = r.waveform(output)?;
            if let Ok(m) = measure_transition(&w, direction, t_ref, vdd) {
                return Ok(m);
            }
            cfg.t_stop *= 4.0;
        }
        Err(NumError::NoConvergence {
            method: "SpiceEvaluator::timing (levels unreached)",
            iterations: 6,
            residual: cfg.t_stop,
        })
    }
}

/// Rungs of the graceful-degradation ladder, in descent order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FallbackRung {
    /// Plain QWM (the paper's configuration) — not a degradation.
    Qwm,
    /// QWM retried with doubled iteration budget, halved Newton damping
    /// clamp and perturbed region-span seeds.
    QwmRetry,
    /// Adaptive-step transient (LTE-controlled, the stiffer integrator).
    SpiceAdaptive,
    /// Fixed-step 1 ps transient (the golden baseline).
    SpiceFixed,
    /// `ln 2 ·` Elmore switch-level bound — always computable, crude.
    ElmoreBound,
}

impl FallbackRung {
    /// Stable name used in reports and the golden renderer.
    pub fn name(self) -> &'static str {
        match self {
            FallbackRung::Qwm => "qwm",
            FallbackRung::QwmRetry => "qwm-retry",
            FallbackRung::SpiceAdaptive => "spice-adaptive",
            FallbackRung::SpiceFixed => "spice-fixed",
            FallbackRung::ElmoreBound => "elmore-bound",
        }
    }
}

/// Why one rung of the ladder declined to produce an arc.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RungFailure {
    /// The rung that failed.
    pub rung: FallbackRung,
    /// Rendered error from that rung.
    pub error: String,
}

/// Provenance of one degraded arc: which rung finally produced it and
/// the full chain of earlier-rung failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Degradation {
    /// Output node name (stage-local, e.g. `"out"` or the net name).
    pub output: String,
    /// Transition the arc describes.
    pub direction: TransitionKind,
    /// Rung that produced the committed value.
    pub landed: FallbackRung,
    /// Failures of every rung above `landed`, in descent order.
    pub failures: Vec<RungFailure>,
}

impl Degradation {
    /// Deterministic report ordering: by output name, direction, rung.
    pub fn sort_key(&self) -> (String, u8, FallbackRung) {
        let dir = match self.direction {
            TransitionKind::Fall => 0u8,
            TransitionKind::Rise => 1u8,
        };
        (self.output.clone(), dir, self.landed)
    }
}

/// Retry/descent budgets for [`FallbackEvaluator`].
#[derive(Debug, Clone)]
pub struct FallbackBudget {
    /// Damped/perturbed QWM retry attempts after the first failure.
    pub qwm_retries: usize,
    /// Optional wall-clock budget per stage evaluation: once exceeded,
    /// remaining transient rungs are skipped (recorded as `Timeout`
    /// failures) and the ladder drops straight to the Elmore bound.
    /// `None` (the default) disables the clock — wall budgets are
    /// inherently non-deterministic, so determinism-sensitive runs
    /// leave this off.
    pub stage_wall: Option<Duration>,
}

impl Default for FallbackBudget {
    fn default() -> Self {
        FallbackBudget {
            qwm_retries: 1,
            stage_wall: None,
        }
    }
}

/// Graceful-degradation wrapper: descends QWM → damped-QWM retry →
/// adaptive transient → fixed-step transient → Elmore bound until one
/// rung answers, and records a [`Degradation`] for every arc not
/// produced by plain QWM. Exhausting all rungs is a hard error carrying
/// the full failure chain — never a silently missing arc.
///
/// The QWM retry rung re-enters the same solver code; the fault site it
/// sees is scope-qualified as `"retry/qwm.region"` so fault plans can
/// fail the first attempt and the retry independently.
#[derive(Debug, Default)]
pub struct FallbackEvaluator {
    /// First-rung QWM configuration.
    pub qwm: QwmConfig,
    /// Adaptive-transient rung configuration (`t_stop` grows ×4 until
    /// the crossing is captured, as in [`SpiceEvaluator`]).
    pub adaptive: FallbackAdaptive,
    /// Fixed-step rung configuration.
    pub spice: FallbackSpice,
    /// Retry/wall budgets.
    pub budget: FallbackBudget,
    degradations: Mutex<Vec<Degradation>>,
}

/// Newtype holding the adaptive rung's config so `Default` can pick the
/// same 2 ns horizon as [`SpiceEvaluator`].
#[derive(Debug, Clone)]
pub struct FallbackAdaptive(pub AdaptiveConfig);

impl Default for FallbackAdaptive {
    fn default() -> Self {
        FallbackAdaptive(AdaptiveConfig::new(2e-9))
    }
}

/// Newtype holding the fixed-step rung's config (2 ns, 1 ps steps).
#[derive(Debug, Clone)]
pub struct FallbackSpice(pub TransientConfig);

impl Default for FallbackSpice {
    fn default() -> Self {
        FallbackSpice(TransientConfig::hspice_1ps(2e-9))
    }
}

impl FallbackEvaluator {
    /// Damped/perturbed QWM configuration for retry `attempt`: doubled
    /// iteration budget, halved per-iteration voltage clamp, and
    /// region-span seeds scaled by a per-attempt factor so each retry
    /// explores different Newton seeds than the failed attempt.
    fn damped_qwm(&self, attempt: usize) -> QwmConfig {
        let mut cfg = self.qwm.clone();
        cfg.region.max_iterations *= 2;
        cfg.region.max_dv *= 0.5;
        let scale = match attempt % 3 {
            0 => 0.33,
            1 => 3.0,
            _ => 0.1,
        };
        for g in &mut cfg.dt_guesses {
            *g *= scale;
        }
        cfg
    }

    fn qwm_attempt(
        &self,
        cfg: &QwmConfig,
        stage: &LogicStage,
        models: &ModelSet,
        output: NodeId,
        direction: TransitionKind,
        input_slew: Option<f64>,
    ) -> Result<TimingMetrics> {
        let vdd = models.tech().vdd;
        match input_slew {
            Some(s) => {
                let (inputs, init, t_ref) =
                    sensitized_setup_with_slew(stage, models, output, direction, s)?;
                let r = evaluate(stage, models, &inputs, &init, output, direction, cfg)?;
                let delay = r.delay_50(vdd, t_ref).ok_or(NumError::InvalidInput {
                    context: "FallbackEvaluator qwm rung",
                    detail: "output never crossed 50%".to_string(),
                })?;
                let slew = r.slew(vdd).ok_or(NumError::InvalidInput {
                    context: "FallbackEvaluator qwm rung",
                    detail: "output never crossed 10/90%".to_string(),
                })?;
                Ok(TimingMetrics { delay, slew })
            }
            None => {
                let (inputs, init, _chain) = sensitized_setup(stage, models, output, direction)?;
                let r = evaluate(stage, models, &inputs, &init, output, direction, cfg)?;
                let delay = r.delay_50(vdd, 0.0).ok_or(NumError::InvalidInput {
                    context: "FallbackEvaluator qwm rung",
                    detail: "output never crossed 50%".to_string(),
                })?;
                Ok(TimingMetrics { delay, slew: 0.0 })
            }
        }
    }

    /// Measures delay (and slew, when slew-aware) off a transient
    /// waveform; `None` when the required levels are not yet reached.
    fn measure(
        w: &Waveform,
        direction: TransitionKind,
        t_ref: f64,
        vdd: f64,
        want_slew: bool,
    ) -> Option<TimingMetrics> {
        if want_slew {
            measure_transition(w, direction, t_ref, vdd).ok()
        } else {
            let falling = direction == TransitionKind::Fall;
            w.crossing(vdd / 2.0, !falling).map(|t| TimingMetrics {
                delay: t,
                slew: 0.0,
            })
        }
    }

    fn spice_attempt(
        &self,
        adaptive: bool,
        stage: &LogicStage,
        models: &ModelSet,
        output: NodeId,
        direction: TransitionKind,
        input_slew: Option<f64>,
    ) -> Result<TimingMetrics> {
        let vdd = models.tech().vdd;
        let (inputs, init, t_ref) = match input_slew {
            Some(s) => sensitized_setup_with_slew(stage, models, output, direction, s)?,
            None => {
                let (inputs, init, _chain) = sensitized_setup(stage, models, output, direction)?;
                (inputs, init, 0.0)
            }
        };
        let want_slew = input_slew.is_some();
        if adaptive {
            let mut cfg = self.adaptive.0;
            for _ in 0..6 {
                let r = simulate_adaptive(stage, models, &inputs, &init, &cfg)?;
                let w = r.waveform(output)?;
                if let Some(m) = Self::measure(&w, direction, t_ref, vdd, want_slew) {
                    return Ok(m);
                }
                cfg.base.t_stop *= 4.0;
            }
            Err(NumError::NoConvergence {
                method: "FallbackEvaluator adaptive rung (levels unreached)",
                iterations: 6,
                residual: cfg.base.t_stop,
            })
        } else {
            let mut cfg = self.spice.0;
            for _ in 0..6 {
                let r = simulate(stage, models, &inputs, &init, &cfg)?;
                let w = r.waveform(output)?;
                if let Some(m) = Self::measure(&w, direction, t_ref, vdd, want_slew) {
                    return Ok(m);
                }
                cfg.t_stop *= 4.0;
            }
            Err(NumError::NoConvergence {
                method: "FallbackEvaluator fixed-step rung (levels unreached)",
                iterations: 6,
                residual: cfg.t_stop,
            })
        }
    }

    fn note_failure(
        failures: &mut Vec<RungFailure>,
        rung: FallbackRung,
        err: NumError,
        output_name: &str,
    ) {
        qwm_obs::warn("fallback.rung_failed")
            .field("output", output_name)
            .field("rung", rung.name())
            .field("error", &err)
            .emit();
        failures.push(RungFailure {
            rung,
            error: err.to_string(),
        });
    }

    /// Checks the stage wall budget before a (potentially expensive)
    /// rung; on exhaustion records a `Timeout` failure for that rung.
    fn wall_exhausted(
        &self,
        start: Instant,
        failures: &mut Vec<RungFailure>,
        rung: FallbackRung,
        output_name: &str,
    ) -> bool {
        let Some(wall) = self.budget.stage_wall else {
            return false;
        };
        if start.elapsed() < wall {
            return false;
        }
        qwm_obs::counter!("fallback.ladder.budget_exhausted").incr();
        Self::note_failure(
            failures,
            rung,
            NumError::Timeout {
                context: "FallbackEvaluator stage wall budget",
                detail: format!("budget {wall:?} exhausted before {} rung", rung.name()),
            },
            output_name,
        );
        true
    }

    fn land(
        &self,
        landed: FallbackRung,
        failures: Vec<RungFailure>,
        output_name: &str,
        direction: TransitionKind,
        metrics: TimingMetrics,
    ) -> Result<TimingMetrics> {
        match landed {
            FallbackRung::Qwm => qwm_obs::counter!("fallback.rung.qwm").incr(),
            FallbackRung::QwmRetry => qwm_obs::counter!("fallback.rung.qwm_retry").incr(),
            FallbackRung::SpiceAdaptive => qwm_obs::counter!("fallback.rung.spice_adaptive").incr(),
            FallbackRung::SpiceFixed => qwm_obs::counter!("fallback.rung.spice_fixed").incr(),
            FallbackRung::ElmoreBound => qwm_obs::counter!("fallback.rung.elmore_bound").incr(),
        }
        // Leave the rung note for the STA engine's arc recorder (same
        // thread; read right after the evaluator returns).
        qwm_obs::trace::note_rung(landed.name(), failures.len() as u64);
        qwm_obs::histogram!("fallback.ladder.rungs_tried", qwm_obs::ITER_BOUNDS)
            .record(failures.len() as u64 + 1);
        if landed != FallbackRung::Qwm {
            let mut book = self.degradations.lock().expect("fallback degradations");
            book.push(Degradation {
                output: output_name.to_string(),
                direction,
                landed,
                failures,
            });
        }
        Ok(metrics)
    }

    /// The ladder: every rung is tried in descent order; the first
    /// success is committed with its provenance, and exhaustion of all
    /// rungs is a hard error carrying the full failure chain.
    fn ladder(
        &self,
        stage: &LogicStage,
        models: &ModelSet,
        output: NodeId,
        direction: TransitionKind,
        input_slew: Option<f64>,
    ) -> Result<TimingMetrics> {
        let _span = qwm_obs::span!("sta.eval.fallback");
        let start = Instant::now();
        let output_name = stage.node(output).name.clone();
        let mut failures: Vec<RungFailure> = Vec::new();

        match self.qwm_attempt(&self.qwm, stage, models, output, direction, input_slew) {
            Ok(m) => {
                return self.land(FallbackRung::Qwm, failures, &output_name, direction, m);
            }
            Err(e) => Self::note_failure(&mut failures, FallbackRung::Qwm, e, &output_name),
        }

        if !self.wall_exhausted(start, &mut failures, FallbackRung::QwmRetry, &output_name) {
            let _scope = qwm_fault::scope("retry");
            for attempt in 0..self.budget.qwm_retries {
                match self.qwm_attempt(
                    &self.damped_qwm(attempt),
                    stage,
                    models,
                    output,
                    direction,
                    input_slew,
                ) {
                    Ok(m) => {
                        return self.land(
                            FallbackRung::QwmRetry,
                            failures,
                            &output_name,
                            direction,
                            m,
                        );
                    }
                    Err(e) => {
                        Self::note_failure(&mut failures, FallbackRung::QwmRetry, e, &output_name);
                    }
                }
            }
        }

        if !self.wall_exhausted(
            start,
            &mut failures,
            FallbackRung::SpiceAdaptive,
            &output_name,
        ) {
            match self.spice_attempt(true, stage, models, output, direction, input_slew) {
                Ok(m) => {
                    return self.land(
                        FallbackRung::SpiceAdaptive,
                        failures,
                        &output_name,
                        direction,
                        m,
                    );
                }
                Err(e) => {
                    Self::note_failure(&mut failures, FallbackRung::SpiceAdaptive, e, &output_name);
                }
            }
        }

        if !self.wall_exhausted(start, &mut failures, FallbackRung::SpiceFixed, &output_name) {
            match self.spice_attempt(false, stage, models, output, direction, input_slew) {
                Ok(m) => {
                    return self.land(
                        FallbackRung::SpiceFixed,
                        failures,
                        &output_name,
                        direction,
                        m,
                    );
                }
                Err(e) => {
                    Self::note_failure(&mut failures, FallbackRung::SpiceFixed, e, &output_name);
                }
            }
        }

        // The Elmore bound is cheap and always attempted, even when the
        // wall budget is spent — better a crude bound than no arc.
        match ElmoreEvaluator.delay(stage, models, output, direction) {
            Ok(delay) => self.land(
                FallbackRung::ElmoreBound,
                failures,
                &output_name,
                direction,
                TimingMetrics { delay, slew: 0.0 },
            ),
            Err(e) => {
                Self::note_failure(&mut failures, FallbackRung::ElmoreBound, e, &output_name);
                qwm_obs::counter!("fallback.ladder.exhausted").incr();
                let chain: Vec<String> = failures
                    .iter()
                    .map(|f| format!("{}: {}", f.rung.name(), f.error))
                    .collect();
                Err(NumError::InvalidInput {
                    context: "FallbackEvaluator: all rungs failed",
                    detail: format!("output {output_name}: {}", chain.join("; ")),
                })
            }
        }
    }
}

impl StageEvaluator for FallbackEvaluator {
    fn name(&self) -> &'static str {
        "fallback"
    }

    fn delay(
        &self,
        stage: &LogicStage,
        models: &ModelSet,
        output: NodeId,
        direction: TransitionKind,
    ) -> Result<f64> {
        self.ladder(stage, models, output, direction, None)
            .map(|m| m.delay)
    }

    fn timing(
        &self,
        stage: &LogicStage,
        models: &ModelSet,
        output: NodeId,
        direction: TransitionKind,
        input_slew: f64,
    ) -> Result<TimingMetrics> {
        self.ladder(stage, models, output, direction, Some(input_slew))
    }

    fn take_degradations(&self) -> Vec<Degradation> {
        std::mem::take(
            &mut *self
                .degradations
                .lock()
                .expect("fallback degradations lock"),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qwm_circuit::cells;
    use qwm_device::{analytic_models, Technology};

    fn setup() -> (Technology, ModelSet) {
        let tech = Technology::cmosp35();
        (tech.clone(), analytic_models(&tech))
    }

    #[test]
    fn three_evaluators_agree_on_ordering() {
        let (tech, models) = setup();
        let evaluators: Vec<Box<dyn StageEvaluator>> = vec![
            Box::new(ElmoreEvaluator),
            Box::new(QwmEvaluator::default()),
            Box::new(SpiceEvaluator::default()),
        ];
        for ev in &evaluators {
            let mut prev = 0.0;
            for n in 2..=4 {
                let g = cells::nand(&tech, n, cells::DEFAULT_LOAD).unwrap();
                let out = g.node_by_name("out").unwrap();
                let d = ev.delay(&g, &models, out, TransitionKind::Fall).unwrap();
                assert!(d > prev, "{}: nand{n} slower than nand{}", ev.name(), n - 1);
                prev = d;
            }
        }
    }

    #[test]
    fn qwm_tracks_spice_on_gates() {
        let (tech, models) = setup();
        let qwm = QwmEvaluator::default();
        let spice = SpiceEvaluator::default();
        for n in [1usize, 3] {
            let g = cells::nand(&tech, n.max(1), cells::DEFAULT_LOAD).unwrap();
            let out = g.node_by_name("out").unwrap();
            let dq = qwm.delay(&g, &models, out, TransitionKind::Fall).unwrap();
            let ds = spice.delay(&g, &models, out, TransitionKind::Fall).unwrap();
            assert!(
                (dq - ds).abs() / ds < 0.12,
                "nand{n}: qwm {dq} vs spice {ds}"
            );
        }
    }

    #[test]
    fn elmore_is_the_crude_one() {
        // Elmore should be in the right decade but not necessarily
        // within 10%.
        let (tech, models) = setup();
        let g = cells::nand(&tech, 3, cells::DEFAULT_LOAD).unwrap();
        let out = g.node_by_name("out").unwrap();
        let de = ElmoreEvaluator
            .delay(&g, &models, out, TransitionKind::Fall)
            .unwrap();
        let ds = SpiceEvaluator::default()
            .delay(&g, &models, out, TransitionKind::Fall)
            .unwrap();
        let ratio = de / ds;
        assert!(ratio > 0.2 && ratio < 5.0, "ratio {ratio}");
    }

    #[test]
    fn rise_delay_through_inverter() {
        let (tech, models) = setup();
        let g = cells::inverter(&tech, cells::DEFAULT_LOAD).unwrap();
        let out = g.node_by_name("out").unwrap();
        let dq = QwmEvaluator::default()
            .delay(&g, &models, out, TransitionKind::Rise)
            .unwrap();
        let ds = SpiceEvaluator::default()
            .delay(&g, &models, out, TransitionKind::Rise)
            .unwrap();
        assert!((dq - ds).abs() / ds < 0.12, "qwm {dq} vs spice {ds}");
    }

    #[test]
    fn aoi21_sensitized_delay_tracks_spice() {
        // Branching pull-down: the worst path (series a·b) is sensitized
        // with c held low; both evaluators must agree on that scenario.
        let (_tech, models) = setup();
        let g = cells::aoi21(&Technology::cmosp35(), cells::DEFAULT_LOAD).unwrap();
        let out = g.node_by_name("out").unwrap();
        let dq = QwmEvaluator::default()
            .delay(&g, &models, out, TransitionKind::Fall)
            .unwrap();
        let ds = SpiceEvaluator::default()
            .delay(&g, &models, out, TransitionKind::Fall)
            .unwrap();
        assert!((dq - ds).abs() / ds < 0.10, "qwm {dq} vs spice {ds}");
        // And the rise direction through the series-c pull-up.
        let dqr = QwmEvaluator::default()
            .delay(&g, &models, out, TransitionKind::Rise)
            .unwrap();
        let dsr = SpiceEvaluator::default()
            .delay(&g, &models, out, TransitionKind::Rise)
            .unwrap();
        assert!(
            (dqr - dsr).abs() / dsr < 0.12,
            "rise qwm {dqr} vs spice {dsr}"
        );
    }

    #[test]
    fn nand_rise_now_supported_via_worst_path() {
        // Parallel pull-ups used to be inextractable; extract_worst picks
        // one branch and sensitizes only its input.
        let (_tech, models) = setup();
        let g = cells::nand(&Technology::cmosp35(), 2, cells::DEFAULT_LOAD).unwrap();
        let out = g.node_by_name("out").unwrap();
        let dq = QwmEvaluator::default()
            .delay(&g, &models, out, TransitionKind::Rise)
            .unwrap();
        let ds = SpiceEvaluator::default()
            .delay(&g, &models, out, TransitionKind::Rise)
            .unwrap();
        assert!((dq - ds).abs() / ds < 0.12, "qwm {dq} vs spice {ds}");
    }

    #[test]
    fn worst_case_setup_shapes() {
        let (tech, models) = setup();
        let g = cells::nand(&tech, 2, cells::DEFAULT_LOAD).unwrap();
        let (inputs, init) = worst_case_setup(&g, &models, TransitionKind::Fall);
        assert_eq!(inputs.len(), 2);
        assert_eq!(init.len(), g.node_count());
        assert_eq!(inputs[0].final_value(), tech.vdd);
        let out = g.node_by_name("out").unwrap();
        assert_eq!(init[out.0], tech.vdd);
    }
}
