//! Transistor-level static timing analysis on top of QWM.
//!
//! Full-chip timing (paper §I) layers three classic techniques over fast
//! stage evaluation: **circuit partitioning** into channel-connected
//! logic stages, **worst-case** per-stage analysis, and **longest-path**
//! propagation. This crate provides all three plus the incremental
//! re-analysis flow:
//!
//! * [`graph`] — netlist → stage DAG (partitioning + topological order);
//! * [`evaluator`] — pluggable stage-delay oracles: switch-level Elmore
//!   (Crystal/IRSIM class), QWM (the paper), and SPICE (golden);
//! * [`engine`] — arrival propagation, critical-path extraction, and
//!   incremental re-analysis after transistor resizing (only the touched
//!   stage is re-evaluated).
//!
//! # Example
//!
//! Time an inverter chain with QWM and find the critical path:
//!
//! ```
//! use qwm_circuit::waveform::TransitionKind;
//! use qwm_device::{analytic_models, Technology};
//! use qwm_sta::engine::StaEngine;
//! use qwm_sta::evaluator::QwmEvaluator;
//! use qwm_sta::graph::inverter_chain;
//!
//! # fn main() -> Result<(), qwm_num::NumError> {
//! let tech = Technology::cmosp35();
//! let models = analytic_models(&tech);
//! let netlist = inverter_chain(&tech, 4, 10e-15);
//! let mut engine = StaEngine::new(netlist, &models, TransitionKind::Fall)?;
//! let report = engine.run(&QwmEvaluator::default())?;
//! let (_net, arrival) = report.worst.expect("a worst output");
//! assert!(arrival > 0.0);
//! assert_eq!(report.critical_path.len(), 4);
//! # Ok(())
//! # }
//! ```

pub mod corners;
pub mod engine;
pub mod evaluator;
pub mod graph;
pub mod incremental;
pub mod liberty;
pub mod nldm;
pub mod report;
pub mod snapshot;

pub use corners::{CornerReport, CornerRun};
pub use engine::{StaEngine, TimingReport};
pub use evaluator::{ElmoreEvaluator, QwmEvaluator, SpiceEvaluator, StageEvaluator};
pub use graph::{StageGraph, StageId};
pub use incremental::{parse_edit_script, Edit, IncrementalStats};
pub use liberty::{write_liberty, LibertyArc, LibertyCell};
pub use nldm::NldmTable;
pub use report::{format_report, golden_corner_report};
pub use snapshot::{CommitSnapshot, CornerCommitSnapshot};

/// Re-export of [`qwm_core::evaluate::warm_worker`] for embedders that
/// run STA queries on long-lived worker threads (e.g. the `qwm-server`
/// pool): call it from each worker's start-up hook to pre-size the
/// thread-local QWM evaluation workspace (DESIGN.md §16).
pub use qwm_core::evaluate::warm_worker;
