//! Batched multi-corner evaluation: PVT corners and Monte Carlo
//! variation samples as first-class workloads.
//!
//! A corner sweep answers "does this circuit (or this edit) hurt at
//! *any* corner". Running N independent engines answers it N times as
//! slowly: the stage graph is partitioned, fanout-loaded and levelized
//! once per engine, and every sweep repeats that fixed cost. The
//! batched flow here traverses the levelized stage DAG **once** per
//! sweep and evaluates all corners per stage:
//!
//! * [`CornerRun`] names one corner and carries its model set and
//!   evaluator instance (per-corner instances, so degradation
//!   provenance pools per corner);
//! * [`StaEngine::run_corners`] is the cold batched sweep — per-corner
//!   commit books, one levelizer, one DAG traversal;
//! * [`StaEngine::run_incremental_corners`] re-times only the dirty
//!   fanout cone across all corners over persistent per-corner books
//!   ([`CommittedCorners`]) — the warm what-if loop;
//! * [`CornerReport`] carries one full [`TimingReport`] per corner plus
//!   the worst corner across the sweep.
//!
//! # Correctness contract
//!
//! Each corner's report is **bitwise-identical** to an independent
//! single-corner run on a fresh engine built with that corner's models
//! — including the exact `evaluations` count — at any worker count
//! (pinned by `tests/corners.rs`). The per-corner state is fully
//! disjoint: separate commit books, separate evaluator instances,
//! per-corner evaluation counters, and cache entries keyed by the
//! interned corner name (a structural [`crate::engine::CacheKey`]
//! member), so corners can never alias each other's arcs even at
//! identical slews.
//!
//! Per-corner evaluation runs inside a [`qwm_fault::scope`] named after
//! the corner, so fault plans can target one corner of a batched sweep
//! (site `"ss/qwm.region"`) and the blast radius is provably that
//! corner alone.

use crate::engine::{NetCommit, StaEngine, TimingReport, NO_PRED};
use crate::evaluator::StageEvaluator;
use crate::graph::StageId;
use crate::incremental::{commit_eq, IncrementalStats};
use qwm_circuit::netlist::NetId;
use qwm_device::model::ModelSet;
use qwm_exec::Levelizer;
use qwm_num::{NumError, Result};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

/// One corner of a batched sweep: its name (interned — also the fault
/// scope and the cache-key qualifier), its characterized model set and
/// its evaluator instance.
///
/// Evaluator instances must be per-corner when the evaluator records
/// degradation provenance (e.g. `FallbackEvaluator`): the engine drains
/// each instance into its corner's report after the sweep.
pub struct CornerRun<'a> {
    /// Interned corner name (see `qwm_device::corner::intern`); must be
    /// unique within one sweep.
    pub name: &'static str,
    /// The corner's characterized model set.
    pub models: &'a ModelSet,
    /// The corner's evaluator instance.
    pub evaluator: &'a dyn StageEvaluator,
}

/// The result of a batched corner sweep: one report per corner, in the
/// sweep's corner order, plus the worst corner across the sweep.
#[derive(Debug, Clone)]
pub struct CornerReport {
    /// Corner names, in sweep order.
    pub corners: Vec<&'static str>,
    /// One full per-corner timing report (same order as `corners`).
    pub reports: Vec<TimingReport>,
    /// `(corner index, net, arrival)` of the globally worst endpoint;
    /// ties keep the earliest corner in sweep order (deterministic).
    pub worst: Option<(usize, NetId, f64)>,
}

impl CornerReport {
    /// The report of the named corner, if it was part of the sweep.
    pub fn report_for(&self, name: &str) -> Option<&TimingReport> {
        self.corners
            .iter()
            .position(|&c| c == name)
            .map(|i| &self.reports[i])
    }

    /// For each net: the corner index with the worst arrival (ties keep
    /// the earliest corner in sweep order). Sorted by net index.
    pub fn per_net_worst_corner(&self) -> Vec<(NetId, usize, f64)> {
        let mut worst: std::collections::BTreeMap<usize, (usize, f64)> =
            std::collections::BTreeMap::new();
        for (c, r) in self.reports.iter().enumerate() {
            for (&n, &a) in &r.arrivals {
                match worst.get(&n.0) {
                    Some(&(_, wa)) if a.total_cmp(&wa) != std::cmp::Ordering::Greater => {}
                    _ => {
                        worst.insert(n.0, (c, a));
                    }
                }
            }
        }
        worst
            .into_iter()
            .map(|(n, (c, a))| (NetId(n), c, a))
            .collect()
    }

    fn from_reports(corners: Vec<&'static str>, reports: Vec<TimingReport>) -> CornerReport {
        let mut worst: Option<(usize, NetId, f64)> = None;
        for (c, r) in reports.iter().enumerate() {
            if let Some((n, a)) = r.worst {
                let better = match worst {
                    None => true,
                    Some((_, _, wa)) => a.total_cmp(&wa) == std::cmp::Ordering::Greater,
                };
                if better {
                    worst = Some((c, n, a));
                }
            }
        }
        CornerReport {
            corners,
            reports,
            worst,
        }
    }
}

/// Persistent per-corner commit books of the last
/// [`StaEngine::run_incremental_corners`] sweep.
/// One per-net commit book per corner, in sweep order.
type CornerBooks = Vec<Vec<Option<NetCommit>>>;

#[derive(Debug, Clone)]
pub(crate) struct CommittedCorners {
    /// Corner names the books were computed for, in sweep order. A
    /// different corner list forces a full re-run.
    pub(crate) corners: Vec<&'static str>,
    /// Evaluator names, per corner; a switch forces a full re-run.
    pub(crate) evaluators: Vec<&'static str>,
    /// Seed slew the books were computed at.
    pub(crate) input_slew: f64,
    /// One per-net commit book per corner (same order as `corners`).
    pub(crate) books: CornerBooks,
}

fn validate_runs(context: &'static str, runs: &[CornerRun]) -> Result<()> {
    if runs.is_empty() {
        return Err(NumError::InvalidInput {
            context,
            detail: "empty corner list".to_string(),
        });
    }
    for (i, r) in runs.iter().enumerate() {
        if runs[..i].iter().any(|p| p.name == r.name) {
            return Err(NumError::InvalidInput {
                context,
                detail: format!(
                    "duplicate corner {:?} — corner names key the arc caches and must be \
                     unique within a sweep",
                    r.name
                ),
            });
        }
    }
    Ok(())
}

impl<'m> StaEngine<'m> {
    /// Cold batched corner sweep: one levelized DAG traversal evaluates
    /// every corner at every stage. Each corner's report is
    /// bitwise-identical to an independent single-corner
    /// [`StaEngine::run_with_slew`] on an engine built with that
    /// corner's models, including the exact `evaluations` count.
    ///
    /// # Errors
    ///
    /// Rejects an empty sweep or duplicate corner names; propagates
    /// evaluator failures (tagged with the corner's fault scope).
    pub fn run_corners(&self, runs: &[CornerRun], input_slew: f64) -> Result<CornerReport> {
        let _span = qwm_obs::span!("sta.run_corners");
        let _trace = qwm_obs::trace::TraceGuard::enter("sta.run_corners");
        validate_runs("StaEngine::run_corners", runs)?;
        qwm_obs::counter!("sta.corner.runs").incr();
        qwm_obs::counter!("sta.corner.batched").add(runs.len() as u64);
        let (books, evals) = self.propagate_corner_books(runs, input_slew)?;
        let names: Vec<&'static str> = runs.iter().map(|r| r.name).collect();
        let reports = books
            .iter()
            .zip(runs)
            .zip(&evals)
            .map(|((book, run), &n)| {
                self.book_to_report(book, n, Self::drained_degradations(run.evaluator))
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(CornerReport::from_reports(names, reports))
    }

    /// Full batched propagation: per-corner commit books over one
    /// levelizer and one DAG traversal. Returns the committed books and
    /// the per-corner evaluator-call counts.
    fn propagate_corner_books(
        &self,
        runs: &[CornerRun],
        input_slew: f64,
    ) -> Result<(CornerBooks, Vec<usize>)> {
        let _trace = qwm_obs::trace::TraceGuard::enter("sta.propagate_corners");
        let nets = self.netlist.net_count();
        let books: Vec<Vec<Mutex<Option<NetCommit>>>> = (0..runs.len())
            .map(|_| (0..nets).map(|_| Mutex::new(None)).collect())
            .collect();
        for book in &books {
            for &pi in self.netlist.primary_inputs() {
                *book[pi.0].lock().expect("net book") = Some((0.0, input_slew, NO_PRED));
            }
        }
        let corner_evals: Vec<AtomicUsize> = (0..runs.len()).map(|_| AtomicUsize::new(0)).collect();
        let lev = {
            let _t = qwm_obs::trace::TraceGuard::enter("sta.levelize");
            self.levelizer()?
        };
        let level_of = crate::engine::trace_levels(&lev);
        qwm_exec::run_dag(self.threads(), &lev, |_w, s| -> Result<()> {
            let _stage = crate::engine::trace_stage(&level_of, s);
            let sid = StageId(s);
            let part = self.graph.stage(sid);
            for (c, run) in runs.iter().enumerate() {
                // Corner-scoped fault sites: a plan targeting
                // "ss/qwm.region" degrades the ss lane alone.
                let _scope = qwm_fault::scope(run.name);
                let book = &books[c];
                let (launch, launch_slew) = part
                    .input_nets
                    .iter()
                    .map(|n| match *book[n.0].lock().expect("net book") {
                        Some((a, sl, _)) => (a, sl),
                        None => (0.0, input_slew),
                    })
                    .fold(
                        (0.0_f64, input_slew),
                        |acc, (a, s)| {
                            if a > acc.0 {
                                (a, s)
                            } else {
                                acc
                            }
                        },
                    );
                for (pos, &net) in part.output_nets.iter().enumerate() {
                    let m = self.arc_timing(
                        run.evaluator,
                        sid,
                        pos,
                        launch_slew,
                        self.direction,
                        run.models,
                        run.name,
                        Some(&corner_evals[c]),
                    )?;
                    let arr = launch + m.delay;
                    let mut slot = book[net.0].lock().expect("net book");
                    if slot.is_none_or(|(a, _, _)| arr > a) {
                        *slot = Some((arr, m.slew, s));
                    }
                }
            }
            Ok(())
        })
        .map_err(|(_, e)| e)?;
        let books = books
            .into_iter()
            .map(|book| {
                book.into_iter()
                    .map(|slot| slot.into_inner().expect("net book"))
                    .collect()
            })
            .collect();
        let evals = corner_evals.into_iter().map(|c| c.into_inner()).collect();
        Ok((books, evals))
    }

    /// Incremental batched corner sweep: re-times only the fanout cone
    /// of the stages dirtied since the last corner commit, across all
    /// corners, over the persistent per-corner books. Every corner's
    /// report stays bitwise-identical to a cold single-corner run on
    /// the identically edited circuit (pinned by `tests/corners.rs`).
    ///
    /// The first call — or a call with a different corner list,
    /// evaluator set, or after the single-corner and corner flows
    /// disagree — performs a full batched propagation and seeds the
    /// books. The corner flow consumes its own edit log
    /// (`dirty_corners`), so interleaving [`StaEngine::run_incremental`]
    /// and this entry point on one engine never loses an edit.
    ///
    /// Aggregate statistics land in [`StaEngine::incremental_stats`]
    /// (`evaluated_stages` counts `(stage, corner)` pairs).
    ///
    /// # Errors
    ///
    /// Propagates evaluator failures; the committed books and the dirty
    /// set are left untouched on error, so the next call retries.
    pub fn run_incremental_corners(&mut self, runs: &[CornerRun]) -> Result<CornerReport> {
        let _span = qwm_obs::span!("sta.run_incremental_corners");
        let _trace = qwm_obs::trace::TraceGuard::enter("sta.run_incremental_corners");
        validate_runs("StaEngine::run_incremental_corners", runs)?;
        qwm_obs::counter!("sta.corner.incremental_runs").incr();
        let names: Vec<&'static str> = runs.iter().map(|r| r.name).collect();
        let eval_names: Vec<&'static str> = runs.iter().map(|r| r.evaluator.name()).collect();
        let seed_slew = self.input_slew;
        let needs_full = match &self.committed_corners {
            None => true,
            Some(c) => c.corners != names || c.evaluators != eval_names,
        };
        if needs_full {
            let (books, evals) = self.propagate_corner_books(runs, seed_slew)?;
            let reports = books
                .iter()
                .zip(runs)
                .zip(&evals)
                .map(|((book, run), &n)| {
                    self.book_to_report(book, n, Self::drained_degradations(run.evaluator))
                })
                .collect::<Result<Vec<_>>>()?;
            self.last_incremental = IncrementalStats {
                full_run: true,
                dirty_stages: self.graph.len(),
                evaluated_stages: self.graph.len() * runs.len(),
                reused_arcs: 0,
                early_stop_nets: 0,
                evaluations: evals.iter().sum(),
            };
            self.committed_corners = Some(CommittedCorners {
                corners: names.clone(),
                evaluators: eval_names,
                input_slew: seed_slew,
                books,
            });
            self.dirty_corners.clear();
            qwm_obs::counter!("sta.corner.full_runs").incr();
            return Ok(CornerReport::from_reports(names, reports));
        }
        let committed = self.committed_corners.as_ref().expect("committed corners");
        let slew_changed = committed.input_slew.to_bits() != seed_slew.to_bits();

        // Per-corner seed sets: the shared edit log, plus — when the
        // seed slew changed — every stage whose launch point in *that
        // corner's* old book had no positive-arrival fanin (exactly the
        // single-corner rule, applied per book).
        let mut seeds: Vec<std::collections::BTreeSet<usize>> =
            vec![self.dirty_corners.clone(); runs.len()];
        if slew_changed {
            for (c, seed) in seeds.iter_mut().enumerate() {
                let old_book = &committed.books[c];
                for (i, p) in self.graph.partitions().iter().enumerate() {
                    let max_arr = p
                        .input_nets
                        .iter()
                        .map(|n| old_book[n.0].map_or(0.0, |(a, _, _)| a))
                        .fold(0.0_f64, f64::max);
                    if max_arr <= 0.0 {
                        seed.insert(i);
                    }
                }
            }
        }
        // One cone over the union of per-corner seeds: a stage in the
        // cone but outside corner c's own cone can never trigger for c
        // (no ancestor in c's seeds changed its fanins), so the union
        // cone preserves per-corner bitwise identity while letting all
        // corners share one sub-levelizer.
        let union: std::collections::BTreeSet<usize> =
            seeds.iter().flat_map(|s| s.iter().copied()).collect();
        let cone = self.graph.fanout_cone(union.iter().copied());
        if cone.is_empty() && !slew_changed {
            let reports = committed
                .books
                .clone()
                .iter()
                .zip(runs)
                .map(|(book, run)| {
                    self.book_to_report(book, 0, Self::drained_degradations(run.evaluator))
                })
                .collect::<Result<Vec<_>>>()?;
            self.last_incremental = IncrementalStats {
                full_run: false,
                ..IncrementalStats::default()
            };
            self.dirty_corners.clear();
            return Ok(CornerReport::from_reports(names, reports));
        }

        let nets = self.netlist.net_count();
        let new_books: Vec<Vec<Mutex<Option<NetCommit>>>> = committed
            .books
            .iter()
            .map(|old| old.iter().map(|&s| Mutex::new(s)).collect())
            .collect();
        let changed: Vec<Vec<AtomicBool>> = (0..runs.len())
            .map(|_| (0..nets).map(|_| AtomicBool::new(false)).collect())
            .collect();
        let mut is_pi = vec![false; nets];
        for &pi in self.netlist.primary_inputs() {
            is_pi[pi.0] = true;
            let seeded = Some((0.0, seed_slew, NO_PRED));
            for (c, book) in new_books.iter().enumerate() {
                let mut slot = book[pi.0].lock().expect("net book");
                if slot.is_none_or(|(_, _, p)| p == NO_PRED) && !commit_eq(*slot, seeded) {
                    *slot = seeded;
                    changed[c][pi.0].store(true, Ordering::Relaxed);
                }
            }
        }
        let in_seeds: Vec<Vec<bool>> = seeds
            .iter()
            .map(|s| {
                let mut v = vec![false; self.graph.len()];
                for &i in s {
                    v[i] = true;
                }
                v
            })
            .collect();
        let succs = self.graph.stage_dependencies();
        let lev = Levelizer::from_subgraph(&succs, &cone).map_err(|e| NumError::InvalidInput {
            context: "StaEngine::run_incremental_corners",
            detail: e.to_string(),
        })?;
        let corner_evals: Vec<AtomicUsize> = (0..runs.len()).map(|_| AtomicUsize::new(0)).collect();
        let evaluated = AtomicUsize::new(0);
        let arcs_requested = AtomicUsize::new(0);
        let early_stops = AtomicUsize::new(0);
        let level_of = crate::engine::trace_levels(&lev);
        qwm_exec::run_dag(self.threads(), &lev, |_w, local| -> Result<()> {
            let gid = cone[local];
            let _stage = level_of.as_ref().map(|lv| {
                qwm_obs::trace::TraceGuard::enter_stage(
                    "sta.stage",
                    gid as u64,
                    lv.get(local).copied().unwrap_or(0),
                )
            });
            let part = self.graph.stage(StageId(gid));
            for (c, run) in runs.iter().enumerate() {
                let _scope = qwm_fault::scope(run.name);
                let triggered = in_seeds[c][gid]
                    || part
                        .input_nets
                        .iter()
                        .any(|n| changed[c][n.0].load(Ordering::Relaxed));
                if !triggered {
                    early_stops.fetch_add(part.output_nets.len(), Ordering::Relaxed);
                    continue;
                }
                evaluated.fetch_add(1, Ordering::Relaxed);
                let book = &new_books[c];
                let (launch, launch_slew) = part
                    .input_nets
                    .iter()
                    .map(|n| match *book[n.0].lock().expect("net book") {
                        Some((a, sl, _)) => (a, sl),
                        None => (0.0, seed_slew),
                    })
                    .fold(
                        (0.0_f64, seed_slew),
                        |acc, (a, s)| {
                            if a > acc.0 {
                                (a, s)
                            } else {
                                acc
                            }
                        },
                    );
                arcs_requested.fetch_add(part.output_nets.len(), Ordering::Relaxed);
                for (pos, &net) in part.output_nets.iter().enumerate() {
                    let m = self.arc_timing(
                        run.evaluator,
                        StageId(gid),
                        pos,
                        launch_slew,
                        self.direction,
                        run.models,
                        run.name,
                        Some(&corner_evals[c]),
                    )?;
                    let arr = launch + m.delay;
                    let candidate = if is_pi[net.0] && arr <= 0.0 {
                        Some((0.0, seed_slew, NO_PRED))
                    } else {
                        Some((arr, m.slew, gid))
                    };
                    let mut slot = book[net.0].lock().expect("net book");
                    if commit_eq(*slot, candidate) {
                        early_stops.fetch_add(1, Ordering::Relaxed);
                    } else {
                        *slot = candidate;
                        changed[c][net.0].store(true, Ordering::Relaxed);
                    }
                }
            }
            Ok(())
        })
        .map_err(|(_, e)| e)?;

        let books: CornerBooks = new_books
            .into_iter()
            .map(|book| {
                book.into_iter()
                    .map(|slot| slot.into_inner().expect("net book"))
                    .collect()
            })
            .collect();
        let evals: Vec<usize> = corner_evals.into_iter().map(|c| c.into_inner()).collect();
        let reports = books
            .iter()
            .zip(runs)
            .zip(&evals)
            .map(|((book, run), &n)| {
                self.book_to_report(book, n, Self::drained_degradations(run.evaluator))
            })
            .collect::<Result<Vec<_>>>()?;
        let total_evals: usize = evals.iter().sum();
        let stats = IncrementalStats {
            full_run: false,
            dirty_stages: cone.len(),
            evaluated_stages: evaluated.load(Ordering::Relaxed),
            reused_arcs: arcs_requested.load(Ordering::Relaxed) - total_evals,
            early_stop_nets: early_stops.load(Ordering::Relaxed),
            evaluations: total_evals,
        };
        self.last_incremental = stats;
        qwm_obs::counter!("sta.corner.dirty_stages").add(stats.dirty_stages as u64);
        qwm_obs::counter!("sta.corner.evaluated_stages").add(stats.evaluated_stages as u64);
        qwm_obs::counter!("sta.corner.reused_arcs").add(stats.reused_arcs as u64);
        qwm_obs::counter!("sta.corner.early_stop_nets").add(stats.early_stop_nets as u64);
        self.committed_corners = Some(CommittedCorners {
            corners: names.clone(),
            evaluators: eval_names,
            input_slew: seed_slew,
            books,
        });
        self.dirty_corners.clear();
        Ok(CornerReport::from_reports(names, reports))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::QwmEvaluator;
    use crate::graph::inverter_chain;
    use qwm_circuit::waveform::TransitionKind;
    use qwm_device::{analytic_models, Corner, Technology};

    fn corner_models(tech: &Technology) -> Vec<(&'static str, ModelSet)> {
        [Corner::ss(), Corner::tt(), Corner::ff()]
            .into_iter()
            .map(|c| (c.interned_name(), analytic_models(&c.technology(tech))))
            .collect()
    }

    #[test]
    fn empty_and_duplicate_sweeps_are_rejected() {
        let tech = Technology::cmosp35();
        let models = analytic_models(&tech);
        let nl = inverter_chain(&tech, 3, 10e-15);
        let engine = StaEngine::new(nl, &models, TransitionKind::Fall).unwrap();
        let ev = QwmEvaluator::default();
        assert!(engine.run_corners(&[], 30e-12).is_err());
        let dup = [
            CornerRun {
                name: "tt",
                models: &models,
                evaluator: &ev,
            },
            CornerRun {
                name: "tt",
                models: &models,
                evaluator: &ev,
            },
        ];
        let err = engine.run_corners(&dup, 30e-12).unwrap_err();
        assert!(err.to_string().contains("duplicate corner"));
    }

    #[test]
    fn worst_corner_is_the_slow_one_and_ties_keep_sweep_order() {
        let tech = Technology::cmosp35();
        let sets = corner_models(&tech);
        let nl = inverter_chain(&tech, 4, 10e-15);
        let base = analytic_models(&tech);
        let engine = StaEngine::new(nl, &base, TransitionKind::Fall).unwrap();
        let evs: Vec<QwmEvaluator> = (0..sets.len()).map(|_| QwmEvaluator::default()).collect();
        let runs: Vec<CornerRun> = sets
            .iter()
            .zip(&evs)
            .map(|((name, models), ev)| CornerRun {
                name,
                models,
                evaluator: ev,
            })
            .collect();
        let cr = engine.run_corners(&runs, 30e-12).unwrap();
        assert_eq!(cr.corners, vec!["ss", "tt", "ff"]);
        let (ci, _, worst_arr) = cr.worst.expect("worst corner");
        assert_eq!(cr.corners[ci], "ss", "slow corner should dominate");
        for r in &cr.reports {
            assert!(r.worst.unwrap().1 <= worst_arr);
        }
        assert!(cr.report_for("tt").is_some());
        assert!(cr.report_for("nope").is_none());
        // Per-net provenance covers every committed net and names ss.
        for (_, c, _) in cr.per_net_worst_corner() {
            assert_eq!(cr.corners[c], "ss");
        }
    }

    #[test]
    fn corner_list_change_forces_full_run() {
        let tech = Technology::cmosp35();
        let sets = corner_models(&tech);
        let nl = inverter_chain(&tech, 3, 10e-15);
        let base = analytic_models(&tech);
        let mut engine = StaEngine::new(nl, &base, TransitionKind::Fall).unwrap();
        let ev = QwmEvaluator::default();
        let all: Vec<CornerRun> = sets
            .iter()
            .map(|(name, models)| CornerRun {
                name,
                models,
                evaluator: &ev,
            })
            .collect();
        let _ = engine.run_incremental_corners(&all).unwrap();
        assert!(engine.incremental_stats().full_run);
        let _ = engine.run_incremental_corners(&all).unwrap();
        assert!(!engine.incremental_stats().full_run);
        // Dropping a corner invalidates the committed books.
        let _ = engine.run_incremental_corners(&all[..2]).unwrap();
        assert!(engine.incremental_stats().full_run);
    }
}
