//! Randomized property tests over the core data structures and physics
//! invariants, spanning crates. Each property is exercised over a
//! seeded deterministic sample of its input space (the workspace builds
//! offline, so no property-testing framework — `qwm_num::rng` drives
//! the sampling).
#![allow(clippy::needless_range_loop)] // index loops mirror the matrix algebra

use qwm::circuit::waveform::Waveform;
use qwm::device::model::{DeviceModel, Geometry, TermVoltage};
use qwm::device::{Mosfet, Polarity, TableModel, Technology};
use qwm::interconnect::rc::RcTree;
use qwm::num::matrix::Matrix;
use qwm::num::rng::Rng64;
use qwm::num::sherman_morrison::solve_rank1_update;
use qwm::num::tridiag::Tridiagonal;

fn tech() -> Technology {
    Technology::cmosp35()
}

/// Thomas solve agrees with dense LU on diagonally dominant systems
/// (the shape QWM produces).
#[test]
fn tridiagonal_matches_dense_lu() {
    let mut rng = Rng64::seed_from_u64(0x7121d1a6);
    for _ in 0..64 {
        let n = rng.range_usize(2, 12);
        let seed: Vec<f64> = (0..40).map(|_| rng.range(-1.0, 1.0)).collect();
        let sub: Vec<f64> = (0..n - 1).map(|i| seed[i % seed.len()]).collect();
        let sup: Vec<f64> = (0..n - 1).map(|i| seed[(i + 13) % seed.len()]).collect();
        let diag: Vec<f64> = (0..n)
            .map(|i| 3.0 + seed[(i + 7) % seed.len()].abs())
            .collect();
        let b: Vec<f64> = (0..n).map(|i| seed[(i + 21) % seed.len()]).collect();
        let t = Tridiagonal::from_bands(sub, diag, sup).unwrap();
        let x_tri = t.solve(&b).unwrap();
        let x_lu = t.to_dense().solve(&b).unwrap();
        for (a, c) in x_tri.iter().zip(&x_lu) {
            assert!((a - c).abs() < 1e-9, "{a} vs {c}");
        }
    }
}

/// Sherman–Morrison agrees with a dense solve of the rank-1-updated
/// system.
#[test]
fn sherman_morrison_matches_dense() {
    let mut rng = Rng64::seed_from_u64(0x54e2a0);
    for _ in 0..64 {
        let n = rng.range_usize(2, 10);
        let seed: Vec<f64> = (0..60).map(|_| rng.range(-1.0, 1.0)).collect();
        let at = |i: usize| seed[i % seed.len()];
        let t = Tridiagonal::from_bands(
            (0..n - 1).map(&at).collect(),
            (0..n).map(|i| 4.0 + at(i + 5).abs()).collect(),
            (0..n - 1).map(|i| at(i + 11)).collect(),
        )
        .unwrap();
        let u: Vec<f64> = (0..n).map(|i| 0.3 * at(i + 17)).collect();
        let v: Vec<f64> = (0..n).map(|i| 0.3 * at(i + 23)).collect();
        let b: Vec<f64> = (0..n).map(|i| at(i + 29)).collect();
        let got = solve_rank1_update(&t, &u, &v, &b).unwrap();
        let mut dense = t.to_dense();
        for r in 0..n {
            for c in 0..n {
                dense.add(r, c, u[r] * v[c]);
            }
        }
        let want = dense.solve(&b).unwrap();
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() < 1e-8, "{g} vs {w}");
        }
    }
}

/// LU round-trip: A · solve(A, b) == b for well-conditioned matrices.
#[test]
fn lu_roundtrip() {
    let mut rng = Rng64::seed_from_u64(0x10f00d);
    for _ in 0..64 {
        let n = rng.range_usize(1, 8);
        let seed: Vec<f64> = (0..80).map(|_| rng.range(-1.0, 1.0)).collect();
        let mut m = Matrix::zeros(n, n).unwrap();
        for r in 0..n {
            for c in 0..n {
                let v = seed[(r * n + c) % seed.len()];
                m.set(r, c, if r == c { 4.0 + v.abs() } else { v });
            }
        }
        let b: Vec<f64> = (0..n).map(|i| seed[(i + 37) % seed.len()]).collect();
        let x = m.solve(&b).unwrap();
        let back = m.mul_vec(&x).unwrap();
        for (g, w) in back.iter().zip(&b) {
            assert!((g - w).abs() < 1e-9);
        }
    }
}

/// MOSFET channel current is antisymmetric under terminal swap for
/// both polarities and any voltages (pass-gate correctness).
#[test]
fn mosfet_antisymmetry() {
    let mut rng = Rng64::seed_from_u64(0xa5a5);
    for _ in 0..64 {
        let vg = rng.range(0.0, 3.3);
        let va = rng.range(0.0, 3.3);
        let vb = rng.range(0.0, 3.3);
        let w = rng.range(0.5, 5.0);
        let polarity = if rng.flip() {
            Polarity::Nmos
        } else {
            Polarity::Pmos
        };
        let m = Mosfet::new(tech(), polarity);
        let g = Geometry::new(w * 1e-6, 0.35e-6);
        let i_fwd = m.iv(&g, TermVoltage::new(vg, va, vb)).unwrap();
        let i_rev = m.iv(&g, TermVoltage::new(vg, vb, va)).unwrap();
        assert!((i_fwd + i_rev).abs() < 1e-15 * (1.0 + i_fwd.abs() / 1e-6));
    }
}

/// NMOS current is monotone nondecreasing in the gate voltage.
#[test]
fn nmos_monotone_in_gate() {
    let mut rng = Rng64::seed_from_u64(0x90070);
    for _ in 0..64 {
        let vd = rng.range(0.1, 3.3);
        let vg_lo = rng.range(0.0, 3.0);
        let dvg = rng.range(0.01, 0.3);
        let m = Mosfet::new(tech(), Polarity::Nmos);
        let g = Geometry::new(1e-6, 0.35e-6);
        let i_lo = m.iv(&g, TermVoltage::new(vg_lo, vd, 0.0)).unwrap();
        let i_hi = m.iv(&g, TermVoltage::new(vg_lo + dvg, vd, 0.0)).unwrap();
        assert!(i_hi >= i_lo - 1e-18);
    }
}

/// The tabular model tracks the analytic model to within a few
/// percent of the local full-scale current, everywhere.
#[test]
fn table_tracks_analytic_everywhere() {
    // One shared table (expensive to build): lazily initialized.
    use std::sync::OnceLock;
    static TABLE: OnceLock<TableModel> = OnceLock::new();
    let table = TABLE
        .get_or_init(|| TableModel::with_defaults(Technology::cmosp35(), Polarity::Nmos).unwrap());
    let analytic = Mosfet::new(tech(), Polarity::Nmos);
    let g = Geometry::new(1e-6, 0.35e-6);
    let mut rng = Rng64::seed_from_u64(0x7ab1e);
    for _ in 0..64 {
        let vg = rng.range(0.0, 3.3);
        let vd = rng.range(0.0, 3.3);
        let vs = rng.range(0.0, 3.3);
        let tv = TermVoltage::new(vg, vd, vs);
        let i_t = table.iv(&g, tv).unwrap();
        let i_a = analytic.iv(&g, tv).unwrap();
        // Full-scale at this gate drive.
        let fs = analytic
            .iv(&g, TermVoltage::new(3.3, 3.3, 0.0))
            .unwrap()
            .abs();
        assert!((i_t - i_a).abs() < 0.02 * fs, "{i_t} vs {i_a} (fs {fs})");
    }
}

/// Junction capacitance decreases monotonically with reverse bias.
#[test]
fn junction_cap_monotone() {
    let mut rng = Rng64::seed_from_u64(0xca9);
    let t = tech();
    for _ in 0..64 {
        let v1 = rng.range(0.0, 3.0);
        let dv = rng.range(0.01, 0.3);
        let c1 = qwm::device::caps::junction_cap(&t, Polarity::Nmos, 1e-12, 4e-6, v1);
        let c2 = qwm::device::caps::junction_cap(&t, Polarity::Nmos, 1e-12, 4e-6, v1 + dv);
        assert!(c2 < c1);
    }
}

/// Waveform crossings are consistent with sampled values.
#[test]
fn waveform_crossing_consistency() {
    let mut rng = Rng64::seed_from_u64(0xc2055);
    for _ in 0..64 {
        let t0 = rng.range(0.0, 1e-9);
        let rise = rng.range(1e-12, 1e-9);
        let level_frac = rng.range(0.05, 0.95);
        let w = Waveform::ramp(t0, rise, 0.0, 3.3);
        let level = level_frac * 3.3;
        let t = w.crossing(level, true).unwrap();
        assert!((w.value(t) - level).abs() < 1e-9);
        assert!(t >= t0 && t <= t0 + rise * 1.0001);
    }
}

/// Elmore delay is monotone in any capacitance increase.
#[test]
fn elmore_monotone_in_cap() {
    let mut rng = Rng64::seed_from_u64(0xe1a0);
    for _ in 0..64 {
        let segs = rng.range_usize(2, 10);
        let extra = rng.range(1e-15, 1e-12);
        let at = rng.range_usize(0, 8);
        let (mut tree, end) = RcTree::ladder(1e3, 1e-12, segs).unwrap();
        let base = tree.elmore(end);
        tree.add_cap((at % segs) + 1, extra);
        assert!(tree.elmore(end) > base);
    }
}

/// Elmore upper-bounds the two-moment D2M estimate at the far end of
/// a line (a known dominance relation).
#[test]
fn d2m_below_elmore() {
    let mut rng = Rng64::seed_from_u64(0xd2e1);
    for _ in 0..64 {
        let r = rng.range(100.0, 1e4);
        let c = rng.range(1e-13, 5e-12);
        let segs = rng.range_usize(4, 32);
        let (tree, end) = RcTree::ladder(r, c, segs).unwrap();
        assert!(tree.d2m_delay(end) <= tree.elmore(end));
    }
}

/// Charge conservation in the SPICE engine: the integral of the output
/// node's capacitor current matches the charge implied by its voltage
/// swing (a discretization-level identity).
#[test]
fn spice_charge_bookkeeping() {
    use qwm::circuit::cells;
    use qwm::device::analytic_models;
    use qwm::spice::engine::{initial_uniform, simulate, TransientConfig};

    let t = tech();
    let models = analytic_models(&t);
    let stage = cells::nmos_stack(&t, &[2e-6], 30e-15).unwrap();
    let inputs = vec![Waveform::step(0.0, 0.0, t.vdd)];
    let init = initial_uniform(&stage, &models, t.vdd);
    let r = simulate(
        &stage,
        &models,
        &inputs,
        &init,
        &TransientConfig::hspice_1ps(1e-9),
    )
    .unwrap();
    let out = stage.node_by_name("out").unwrap();
    let cur = r.node_current(&stage, &models, out).unwrap();
    let (ts, is): (Vec<f64>, Vec<f64>) = cur.into_iter().unzip();
    let q_integrated = qwm::num::integrate::trapezoid(&ts, &is).unwrap();
    // Expected charge: ∫C(v)dv from Vdd to the final voltage.
    let v_end = *r.voltages[out.0].last().unwrap();
    let n_steps = 200;
    let mut q_expected = 0.0;
    for i in 0..n_steps {
        let v = t.vdd + (v_end - t.vdd) * (i as f64 + 0.5) / n_steps as f64;
        q_expected += stage.node_cap(out, &models, v) * (v_end - t.vdd) / n_steps as f64;
    }
    let rel = (q_integrated - q_expected).abs() / q_expected.abs();
    assert!(
        rel < 0.05,
        "integrated {q_integrated} vs expected {q_expected}"
    );
}

/// Arbitrary strings for the parser fuzz tests: mostly printable ASCII
/// with newlines, tabs and occasional arbitrary Unicode mixed in.
fn random_string(rng: &mut Rng64, max_len: usize) -> String {
    let len = rng.range_usize(0, max_len + 1);
    (0..len)
        .map(|_| match rng.range_usize(0, 12) {
            0 => char::from_u32((rng.next_u64() % 0x11_0000) as u32).unwrap_or('\u{fffd}'),
            1 => '\n',
            2 => '\t',
            _ => (0x20u8 + (rng.next_u64() % 0x5f) as u8) as char,
        })
        .collect()
}

/// The deck parser never panics on arbitrary input — it returns
/// structured errors.
#[test]
fn parser_never_panics() {
    let mut rng = Rng64::seed_from_u64(0x9a21c);
    for _ in 0..256 {
        let input = random_string(&mut rng, 400);
        let _ = qwm::circuit::parser::parse_netlist(&input);
    }
}

/// Engineering-notation parsing never panics and round-trips plain
/// floats.
#[test]
fn parse_value_total() {
    let mut rng = Rng64::seed_from_u64(0x9a15e);
    for _ in 0..256 {
        let input = random_string(&mut rng, 24);
        let _ = qwm::circuit::parser::parse_value(&input);
    }
}

#[test]
fn parse_value_roundtrip() {
    let mut rng = Rng64::seed_from_u64(0x20117d);
    for _ in 0..256 {
        let v = rng.range(-1e9, 1e9);
        let s = format!("{v}");
        let parsed = qwm::circuit::parser::parse_value(&s).unwrap();
        assert!((parsed - v).abs() <= 1e-12 * v.abs().max(1.0));
    }
}

#[test]
fn wires_never_produce_turn_on_events() {
    // A decoder path: 3 transistors + 3 wires. Committed turn-on events
    // must reference only transistor elements.
    use qwm::circuit::cells;
    use qwm::core::evaluate::{evaluate, CriticalPointKind, QwmConfig};
    use qwm::device::analytic_models;
    use qwm::spice::engine::initial_uniform;

    let t = tech();
    let models = analytic_models(&t);
    let stage = cells::decoder_path(&t, 3, 100e-6, 10e-15).unwrap();
    let out = stage.node_by_name("out").unwrap();
    let inputs: Vec<Waveform> = (0..stage.inputs().len())
        .map(|_| Waveform::step(0.0, 0.0, t.vdd))
        .collect();
    let init = initial_uniform(&stage, &models, t.vdd);
    let r = evaluate(
        &stage,
        &models,
        &inputs,
        &init,
        out,
        qwm::circuit::waveform::TransitionKind::Fall,
        &QwmConfig::default(),
    )
    .unwrap();
    use qwm::circuit::DeviceKind;
    for cp in &r.critical_points {
        if let CriticalPointKind::TurnOn(k) | CriticalPointKind::TimedTurnOn(k) = cp.kind {
            assert_ne!(
                r.chain.elements[k - 1].kind,
                DeviceKind::Wire,
                "wire produced a turn-on at {cp:?}"
            );
        }
    }
    // And the waveform still reaches all monitored levels.
    assert_eq!(r.output_crossings.len(), 3);
}

/// QWM is deterministic: identical inputs give bit-identical results
/// (no hidden randomness or time dependence).
#[test]
fn qwm_is_deterministic() {
    use qwm::circuit::cells;
    use qwm::core::evaluate::{evaluate, QwmConfig};
    use qwm::device::analytic_models;
    use qwm::spice::engine::initial_uniform;
    let t = tech();
    let models = analytic_models(&t);
    let mut rng = Rng64::seed_from_u64(0xde7e2);
    for _ in 0..8 {
        let k = rng.range_usize(2, 5);
        let widths: Vec<f64> = (0..k).map(|_| rng.range(1.0, 4.0) * t.w_min).collect();
        let load_ff = rng.range(5.0, 30.0);
        let stage = cells::nmos_stack(&t, &widths, load_ff * 1e-15).unwrap();
        let inputs: Vec<Waveform> = (0..widths.len())
            .map(|_| Waveform::step(0.0, 0.0, t.vdd))
            .collect();
        let init = initial_uniform(&stage, &models, t.vdd);
        let out = stage.node_by_name("out").unwrap();
        let run = || {
            evaluate(
                &stage,
                &models,
                &inputs,
                &init,
                out,
                qwm::circuit::waveform::TransitionKind::Fall,
                &QwmConfig::default(),
            )
            .unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a.delay_50(t.vdd, 0.0), b.delay_50(t.vdd, 0.0));
        assert_eq!(a.regions, b.regions);
        assert_eq!(a.iterations, b.iterations);
        for (wa, wb) in a.waveforms.iter().zip(&b.waveforms) {
            assert_eq!(wa.breakpoints(), wb.breakpoints());
        }
    }
}

/// Piecewise-quadratic crossing agrees with dense sampling.
#[test]
fn piecewise_crossing_matches_sampling() {
    use qwm::core::piecewise::{PiecewiseQuadratic, QuadraticPiece};
    let mut rng = Rng64::seed_from_u64(0xc6055);
    for _ in 0..64 {
        let v0 = rng.range(2.0, 3.3);
        let i0 = rng.range(-2e-3, -1e-4);
        let alpha = rng.range(-1e8, 1e8);
        let cap = rng.range(5.0, 40.0) * 1e-15;
        let t1 = 50e-12;
        let mut w = PiecewiseQuadratic::new();
        w.push(QuadraticPiece {
            t0: 0.0,
            t1,
            v0,
            i0,
            alpha,
            cap,
        })
        .unwrap();
        let level = v0 - 0.4;
        if let Some(tc) = w.crossing(level) {
            assert!((w.voltage(tc) - level).abs() < 1e-6);
            // No earlier crossing: sample densely before tc.
            let n = 200;
            for i in 0..n {
                let t = tc * i as f64 / n as f64;
                assert!(w.voltage(t) > level - 1e-6, "earlier crossing at {t}");
            }
        }
    }
}

/// Cross-validation of two independent linear-circuit paths: the AWE
/// two-pole model (moment matching) against the MNA transient engine on
/// the same distributed wire.
#[test]
fn awe_matches_mna_on_a_driven_wire() {
    use qwm::circuit::stage::LogicStage;
    use qwm::device::analytic_models;
    use qwm::interconnect::rc::RcTree;
    use qwm::interconnect::TwoPoleModel;
    use qwm::spice::engine::{simulate, TransientConfig};

    let t = tech();
    let models = analytic_models(&t);
    // Wire: 0.6 µm × 800 µm, driven hard through a wide NMOS so the
    // driver is nearly ideal; observe the far end.
    let (wire_w, wire_l, segs) = (0.6e-6, 800e-6, 12);

    // Path A: AWE on the driver + RC ladder. The driver enters the
    // linear model as its effective resistance and junction capacitance
    // (the same reduction a switch-level tool would make).
    let drv_geom = qwm::device::Geometry::new(60e-6, t.l_min);
    let nmos = qwm::device::Mosfet::new(t.clone(), qwm::device::Polarity::Nmos);
    use qwm::device::model::{DeviceModel, TermVoltage};
    let i_half = nmos
        .iv(&drv_geom, TermVoltage::new(t.vdd, t.vdd / 2.0, 0.0))
        .unwrap();
    let r_drv = t.vdd / 2.0 / i_half;
    let c_drv = nmos.src_cap(&drv_geom, t.vdd / 2.0);

    let r_total = qwm::device::caps::wire_res(&t, wire_w, wire_l);
    let c_total = qwm::device::caps::wire_cap(&t, wire_w, wire_l);
    let mut tree = RcTree::new(0.0);
    let near_node = tree.add_node(0, r_drv, c_drv).unwrap();
    let rs = r_total / segs as f64;
    let cs = c_total / segs as f64;
    let mut at = near_node;
    tree.add_cap(near_node, 0.5 * cs);
    for s in 0..segs {
        let c = if s + 1 == segs { 0.5 * cs } else { cs };
        at = tree.add_node(at, rs, c).unwrap();
    }
    let far = at;
    let awe = TwoPoleModel::from_tree(&tree, far).unwrap();
    let d_awe = awe.delay_50().unwrap();

    // Path B: MNA transient of the same ladder as wire edges, driver
    // modeled as a very strong discharge transistor (takes the near end
    // down quickly; the wire dominates).
    let mut b = LogicStage::builder("wire_tb");
    let gnd = b.gnd();
    let drive = b.input("drive");
    let near = b.node("near");
    b.transistor(
        qwm::circuit::DeviceKind::Nmos,
        drive,
        near,
        gnd,
        qwm::device::Geometry::new(60e-6, t.l_min), // ~3 Ω effective
    );
    let mut at = near;
    for s in 0..segs {
        let next = if s + 1 == segs {
            b.node("out")
        } else {
            b.node(&format!("w{s}"))
        };
        b.wire(next, at, wire_w, wire_l / segs as f64);
        at = next;
    }
    b.output(at);
    let stage = b.build().unwrap();
    let inputs = vec![Waveform::step(0.0, 0.0, t.vdd)];
    let init: Vec<f64> = (0..stage.node_count())
        .map(|i| if i == stage.sink().0 { 0.0 } else { t.vdd })
        .collect();
    let r = simulate(
        &stage,
        &models,
        &inputs,
        &init,
        &TransientConfig::hspice_1ps(1.5e-9),
    )
    .unwrap();
    let out = stage.node_by_name("out").unwrap();
    let d_mna = r
        .waveform(out)
        .unwrap()
        .crossing(t.vdd / 2.0, false)
        .unwrap();
    // The MNA run resolves the nonlinear driver exactly and includes
    // the ~0.5 ps input ramp; the linearized AWE model must still land
    // in the same place.
    assert!(
        (d_mna - d_awe).abs() / d_mna < 0.30,
        "awe {d_awe:.3e} vs mna {d_mna:.3e}"
    );
}
