//! Seeded property suite for the incremental STA subsystem.
//!
//! The contract under test: for any netlist, any edit sequence
//! (resize / load / input-slew) and any worker count,
//! [`StaEngine::run_incremental`] produces a report **bitwise-identical**
//! to a cold [`StaEngine::run_with_slew`] on an identically edited
//! fresh engine — while never re-evaluating more stages than the edited
//! stages' static fanout cone.
//!
//! Exact `f64` equality throughout: an epsilon would hide a real
//! cache-reuse or propagation bug.

use qwm::circuit::netlist::{NetId, Netlist};
use qwm::circuit::waveform::TransitionKind;
use qwm::device::{analytic_models, ModelSet, Technology};
use qwm::num::rng::Rng64;
use qwm::sta::engine::{StaEngine, TimingReport};
use qwm::sta::evaluator::{ElmoreEvaluator, QwmEvaluator, StageEvaluator};
use qwm::sta::graph::{inverter_chain, random_dag_netlist};
use qwm::sta::incremental::Edit;
use std::collections::HashMap;

const WORKERS: [usize; 2] = [1, 4];

/// Exact report-body comparison. `evaluations` is deliberately not
/// compared — re-evaluating less is the whole point of the flow.
fn assert_bodies_identical(a: &TimingReport, b: &TimingReport, what: &str) {
    assert_eq!(a.worst, b.worst, "{what}: worst endpoint");
    assert_eq!(a.critical_path, b.critical_path, "{what}: critical path");
    let sorted = |m: &HashMap<NetId, f64>| {
        let mut v: Vec<(usize, f64)> = m.iter().map(|(k, &x)| (k.0, x)).collect();
        v.sort_by_key(|&(k, _)| k);
        v
    };
    assert_eq!(
        sorted(&a.arrivals),
        sorted(&b.arrivals),
        "{what}: arrivals (exact)"
    );
    assert_eq!(sorted(&a.slews), sorted(&b.slews), "{what}: slews (exact)");
}

/// The cold reference: a fresh engine over the edited netlist, timed
/// with `run_with_slew` at the incremental engine's current seed slew.
fn cold_reference(
    nl: &Netlist,
    models: &ModelSet,
    ev: &dyn StageEvaluator,
    slew: f64,
    threads: usize,
) -> TimingReport {
    StaEngine::new(nl.clone(), models, TransitionKind::Fall)
        .expect("cold engine")
        .with_threads(threads)
        .run_with_slew(ev, slew)
        .expect("cold run")
}

/// Draws a random edit against the current netlist. Resizes and loads
/// target random gate devices/nets; slews stay in the QWM-sensitive
/// 5–50 ps band.
fn random_edit(rng: &mut Rng64, nl: &Netlist, tech: &Technology, with_slew: bool) -> Edit {
    let kinds = if with_slew { 3 } else { 2 };
    match rng.next_u64() % kinds {
        0 => Edit::ResizeDevice {
            device: (rng.next_u64() as usize) % nl.devices().len(),
            w: tech.w_min * (1.0 + 3.0 * rng.unit()),
        },
        1 => {
            // Loads go on driven nets so the edit has a timing effect.
            let net = loop {
                let n = NetId((rng.next_u64() as usize) % nl.net_count());
                if !nl.is_rail(n) && !nl.primary_inputs().contains(&n) {
                    break n;
                }
            };
            Edit::SetNetLoad {
                net,
                cap: 1e-15 + 9e-15 * rng.unit(),
            }
        }
        _ => Edit::SetInputSlew {
            slew: 5e-12 + 45e-12 * rng.unit(),
        },
    }
}

/// Random DAGs × random resize/load sequences × 1 and 4 workers,
/// Elmore-evaluated (fast enough for many rounds). Every round checks
/// bitwise identity with a cold run and the cone bound on work.
#[test]
fn random_edit_sequences_match_cold_runs() {
    let tech = Technology::cmosp35();
    let models = analytic_models(&tech);
    let ev = ElmoreEvaluator;
    for seed in [0x1CE5_u64, 0xD1A7, 0xFEED] {
        let nl = random_dag_netlist(&tech, 60, seed);
        for threads in WORKERS {
            let mut engine = StaEngine::new(nl.clone(), &models, TransitionKind::Fall)
                .expect("engine")
                .with_threads(threads);
            engine.set_input_slew(15e-12).expect("slew");
            let _ = engine.run_incremental(&ev).expect("seed run");
            assert!(engine.incremental_stats().full_run);
            let mut rng = Rng64::seed_from_u64(seed ^ 0xABCD);
            for round in 0..8 {
                let edit = random_edit(&mut rng, engine.netlist(), &tech, false);
                engine.apply_edits(&[edit]).expect("edit applies");
                let incr = engine.run_incremental(&ev).expect("incremental run");
                let stats = engine.incremental_stats();
                let what = format!("seed {seed:#x} round {round} @ {threads} threads ({edit:?})");
                assert!(!stats.full_run, "{what}: must not fall back to full");
                assert!(
                    stats.evaluated_stages <= stats.dirty_stages,
                    "{what}: evaluated {} > cone {}",
                    stats.evaluated_stages,
                    stats.dirty_stages
                );
                assert!(
                    stats.dirty_stages <= engine.graph().len(),
                    "{what}: cone exceeds the graph"
                );
                let cold =
                    cold_reference(engine.netlist(), &models, &ev, engine.input_slew(), threads);
                assert_bodies_identical(&incr, &cold, &what);
            }
        }
    }
}

/// All three edit kinds (including input-slew changes) against the
/// slew-sensitive QWM evaluator on a small chain.
#[test]
fn qwm_edit_sequences_with_slew_changes_match_cold_runs() {
    let tech = Technology::cmosp35();
    let models = analytic_models(&tech);
    let ev = QwmEvaluator::default();
    let nl = inverter_chain(&tech, 8, 10e-15);
    for threads in WORKERS {
        let mut engine = StaEngine::new(nl.clone(), &models, TransitionKind::Fall)
            .expect("engine")
            .with_threads(threads);
        engine.set_input_slew(20e-12).expect("slew");
        let _ = engine.run_incremental(&ev).expect("seed run");
        let mut rng = Rng64::seed_from_u64(0xC0FFEE ^ threads as u64);
        for round in 0..6 {
            let edit = random_edit(&mut rng, engine.netlist(), &tech, true);
            engine.apply_edits(&[edit]).expect("edit applies");
            let incr = engine.run_incremental(&ev).expect("incremental run");
            let what = format!("qwm round {round} @ {threads} threads ({edit:?})");
            let cold = cold_reference(engine.netlist(), &models, &ev, engine.input_slew(), threads);
            assert_bodies_identical(&incr, &cold, &what);
        }
    }
}

/// ISSUE-4 acceptance: on a seeded ≥200-stage DAG, a single resize
/// re-evaluates only the fanout cone, bitwise-identical to a cold run
/// at 1 and 4 workers.
#[test]
fn acceptance_single_resize_on_200_stage_dag() {
    let tech = Technology::cmosp35();
    let models = analytic_models(&tech);
    let ev = ElmoreEvaluator;
    let nl = random_dag_netlist(&tech, 220, 0xACCE55);
    let victim = nl
        .find_device("MN110")
        .or_else(|| nl.find_device("MN110a"))
        .expect("mid-DAG device");
    let mut per_worker: Vec<TimingReport> = Vec::new();
    for threads in WORKERS {
        let mut engine = StaEngine::new(nl.clone(), &models, TransitionKind::Fall)
            .expect("engine")
            .with_threads(threads);
        engine.set_input_slew(15e-12).expect("slew");
        let _ = engine.run_incremental(&ev).expect("cold seed run");

        engine
            .resize_device(victim, 3.0 * tech.w_min)
            .expect("resize");
        // The cone of the edit: the victim's stage plus its gate-net
        // driver (fanout-load update), closed over dependencies.
        let seed_stage = engine.graph().stage_of_device(victim).expect("stage");
        let gate = engine.netlist().devices()[victim].gate.expect("gate net");
        let mut seeds = vec![seed_stage.0];
        if let Some(d) = engine.graph().driver_of(gate) {
            seeds.push(d.0);
        }
        let cone = engine.graph().fanout_cone(seeds);

        let incr = engine.run_incremental(&ev).expect("incremental run");
        let stats = engine.incremental_stats();
        assert!(!stats.full_run);
        assert_eq!(
            stats.dirty_stages,
            cone.len(),
            "dirty cone is exactly the edit's static fanout cone"
        );
        assert!(stats.evaluated_stages <= stats.dirty_stages);
        assert!(
            stats.dirty_stages < engine.graph().len(),
            "a mid-DAG edit must not re-time the whole graph"
        );
        assert!(stats.evaluations > 0, "the edited stage re-evaluates");
        let cold = cold_reference(engine.netlist(), &models, &ev, 15e-12, threads);
        assert_bodies_identical(&incr, &cold, &format!("acceptance @ {threads} threads"));
        per_worker.push(incr);
    }
    assert_bodies_identical(&per_worker[0], &per_worker[1], "1 vs 4 workers");
    assert_eq!(
        per_worker[0].evaluations, per_worker[1].evaluations,
        "triggering is deterministic across worker counts"
    );
}

/// An identity edit (resize to the same width) invalidates and
/// re-evaluates the seed stages, but every recommit is bitwise-equal,
/// so propagation early-stops and downstream stages never trigger.
#[test]
fn identity_edit_early_stops_the_cone() {
    let tech = Technology::cmosp35();
    let models = analytic_models(&tech);
    let ev = ElmoreEvaluator;
    let nl = random_dag_netlist(&tech, 120, 0x5709);
    let mut engine = StaEngine::new(nl, &models, TransitionKind::Fall).expect("engine");
    let r1 = engine.run_incremental(&ev).expect("seed run");
    let victim = engine.netlist().find_device("MN60").map_or(0, |d| d);
    let w = engine.netlist().devices()[victim].geom.w;
    engine.resize_device(victim, w).expect("identity resize");
    let r2 = engine.run_incremental(&ev).expect("incremental run");
    let stats = engine.incremental_stats();
    assert_bodies_identical(&r1, &r2, "identity edit");
    // Only the seed stages (victim + gate driver) trigger; the rest of
    // the cone is cut off by unchanged commits.
    assert!(
        stats.evaluated_stages <= 2,
        "evaluated {} stages for a no-op edit",
        stats.evaluated_stages
    );
    assert!(stats.early_stop_nets > 0);
}

/// Batched edits accumulate dirt; one incremental run settles them all.
#[test]
fn batched_edits_settle_in_one_run() {
    let tech = Technology::cmosp35();
    let models = analytic_models(&tech);
    let ev = ElmoreEvaluator;
    let nl = random_dag_netlist(&tech, 80, 0xBA7C4);
    let mut engine = StaEngine::new(nl, &models, TransitionKind::Fall).expect("engine");
    engine.set_input_slew(10e-12).expect("slew");
    let _ = engine.run_incremental(&ev).expect("seed run");
    let g10 = engine.netlist().find_net("g10").expect("g10");
    let batch = [
        Edit::ResizeDevice {
            device: 3,
            w: 2.5 * tech.w_min,
        },
        Edit::SetNetLoad {
            net: g10,
            cap: 8e-15,
        },
        Edit::SetInputSlew { slew: 25e-12 },
    ];
    engine.apply_edits(&batch).expect("batch applies");
    let incr = engine.run_incremental(&ev).expect("incremental run");
    let cold = cold_reference(engine.netlist(), &models, &ev, 25e-12, 1);
    assert_bodies_identical(&incr, &cold, "batched edits");
}
