//! Failure-path lock-down: deterministic fault injection drives the
//! graceful-degradation ladder through every rung, and the resulting
//! reports carry full provenance and stay bitwise-identical across
//! worker counts.
//!
//! The fault plan is process-global state, so every test in this binary
//! serializes on one mutex and installs (or clears) its own plan inside
//! the critical section. `scripts/check.sh` additionally runs this
//! whole binary under `QWM_FAULTS` chaos plans; tests that need a clean
//! slate call `qwm::fault::clear()` explicitly rather than assuming the
//! environment is quiet.

use qwm::circuit::netlist::Netlist;
use qwm::circuit::waveform::TransitionKind;
use qwm::core::evaluate::QwmConfig;
use qwm::device::{
    analytic_models, parse_corner_list, tabular_models, CornerModels, ModelSet, Technology,
};
use qwm::fault::{FaultKind, FaultPlan};
use qwm::sta::engine::{StaEngine, TimingReport};
use qwm::sta::evaluator::{FallbackEvaluator, FallbackRung, SpiceEvaluator};
use qwm::sta::graph::{inverter_chain, random_dag_netlist};
use qwm::sta::report::golden_report;
use qwm::sta::CornerRun;
use std::sync::Mutex;

static LOCK: Mutex<()> = Mutex::new(());

/// Serializes tests around the global fault plan. A panicking test
/// poisons the mutex; later tests still run (they install their own
/// plan regardless), so the poison is deliberately ignored.
fn locked() -> std::sync::MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

const ALL_KINDS: [FaultKind; 4] = [
    FaultKind::NoConvergence,
    FaultKind::Singular,
    FaultKind::OutOfGrid,
    FaultKind::Timeout,
];

/// Builds the prob-1.0 plan that forces the ladder to land on `rung`:
/// every rung above it has its site faulted unconditionally.
/// Probability-1 rules are order-independent, so these plans preserve
/// the engine's bitwise-determinism contract at any worker count.
fn plan_landing_on(rung: FallbackRung, kind: FaultKind) -> FaultPlan {
    let sites: &[&str] = match rung {
        FallbackRung::Qwm => &[],
        FallbackRung::QwmRetry => &["qwm.region"],
        FallbackRung::SpiceAdaptive => &["qwm.region", "retry/qwm.region"],
        FallbackRung::SpiceFixed => &["qwm.region", "retry/qwm.region", "spice.adaptive"],
        FallbackRung::ElmoreBound => &[
            "qwm.region",
            "retry/qwm.region",
            "spice.adaptive",
            "spice.transient",
        ],
    };
    sites
        .iter()
        .fold(FaultPlan::new(1), |p, &s| p.inject(s, kind))
}

/// The rungs every arc must have failed through before landing.
fn expected_chain(landed: FallbackRung) -> Vec<FallbackRung> {
    [
        FallbackRung::Qwm,
        FallbackRung::QwmRetry,
        FallbackRung::SpiceAdaptive,
        FallbackRung::SpiceFixed,
    ]
    .into_iter()
    .filter(|&r| r < landed)
    .collect()
}

fn chain3(tech: &Technology) -> Netlist {
    inverter_chain(tech, 3, 10e-15)
}

fn run_fallback(nl: &Netlist, models: &ModelSet, threads: usize) -> TimingReport {
    let engine = StaEngine::new(nl.clone(), models, TransitionKind::Fall)
        .expect("engine")
        .with_threads(threads);
    engine
        .run(&FallbackEvaluator::default())
        .expect("ladder absorbs injected faults")
}

/// Tentpole matrix: every fault kind × every landing rung × {1, 4}
/// workers. Asserts (a) the run still succeeds, (b) every degraded arc
/// landed on exactly the predicted rung with the predicted failure
/// chain, (c) the canonical golden render — which embeds the
/// degradation provenance — is byte-identical across worker counts.
#[test]
fn every_kind_lands_on_every_rung_deterministically() {
    let _g = locked();
    let tech = Technology::cmosp35();
    let models = analytic_models(&tech);
    let nl = chain3(&tech);
    for kind in ALL_KINDS {
        for landed in [
            FallbackRung::QwmRetry,
            FallbackRung::SpiceAdaptive,
            FallbackRung::SpiceFixed,
            FallbackRung::ElmoreBound,
        ] {
            let mut renders = Vec::new();
            for threads in [1usize, 4] {
                qwm::fault::install(plan_landing_on(landed, kind));
                let engine = StaEngine::new(nl.clone(), &models, TransitionKind::Fall)
                    .expect("engine")
                    .with_threads(threads);
                let report = engine
                    .run(&FallbackEvaluator::default())
                    .unwrap_or_else(|e| panic!("{kind:?} -> {landed:?}: {e}"));
                assert!(
                    !report.degradations.is_empty(),
                    "{kind:?} -> {landed:?}: degradations recorded"
                );
                let want_chain = expected_chain(landed);
                for d in &report.degradations {
                    assert_eq!(
                        d.landed, landed,
                        "{kind:?}: arc {} landed on the wrong rung",
                        d.output
                    );
                    let got: Vec<FallbackRung> = d.failures.iter().map(|f| f.rung).collect();
                    assert_eq!(got, want_chain, "{kind:?} -> {landed:?}: failure chain");
                    // Provenance carries a rendered error per failed
                    // rung. The QWM rung wraps solver errors in its own
                    // no-candidate-converged message, but the transient
                    // rungs propagate the injected error verbatim.
                    assert!(
                        d.failures.iter().all(|f| !f.error.is_empty()),
                        "{kind:?}: every failure is rendered: {:?}",
                        d.failures
                    );
                    // (`NumError::Singular` carries only an index and a
                    // pivot — no context string — so it is exempt.)
                    if landed > FallbackRung::SpiceAdaptive && kind != FaultKind::Singular {
                        let adaptive = d
                            .failures
                            .iter()
                            .find(|f| f.rung == FallbackRung::SpiceAdaptive)
                            .expect("adaptive rung failed");
                        assert!(
                            adaptive.error.contains("fault-injected"),
                            "{kind:?}: adaptive failure names the \
                             injected fault: {}",
                            adaptive.error
                        );
                    }
                }
                renders.push(golden_report(&report, engine.netlist()));
            }
            assert_eq!(
                renders[0], renders[1],
                "{kind:?} -> {landed:?}: degraded report must be \
                 byte-identical at 1 vs 4 workers"
            );
            assert!(
                renders[0].contains(&format!(" {}", landed.name())),
                "golden render names the landing rung:\n{}",
                renders[0]
            );
        }
    }
    qwm::fault::clear();
}

/// A fault in the characterized-table lookup (`device.table`) degrades
/// the QWM rung when the engine runs on tabular models; the transient
/// rungs share those models, so the ladder descends past them too and
/// the failure chain names the table lookup.
#[test]
fn table_lookup_faults_degrade_with_provenance() {
    let _g = locked();
    let tech = Technology::cmosp35();
    let models = tabular_models(&tech).expect("characterize");
    let nl = chain3(&tech);
    qwm::fault::install(FaultPlan::new(3).inject("device.table", FaultKind::OutOfGrid));
    let report = run_fallback(&nl, &models, 1);
    qwm::fault::clear();
    assert!(!report.degradations.is_empty());
    for d in &report.degradations {
        assert!(
            d.failures
                .iter()
                .any(|f| f.error.contains("fault-injected table lookup")),
            "chain names the table fault: {:?}",
            d.failures
        );
    }
}

/// Exhausting every rung — including the terminal Elmore bound — must
/// surface as a hard error carrying the full rung-failure chain, never
/// a silently missing arc.
#[test]
fn exhausting_all_rungs_is_a_hard_error_with_the_full_chain() {
    let _g = locked();
    let tech = Technology::cmosp35();
    let models = analytic_models(&tech);
    let nl = chain3(&tech);
    qwm::fault::install(
        plan_landing_on(FallbackRung::ElmoreBound, FaultKind::NoConvergence)
            .inject("sta.elmore", FaultKind::NoConvergence),
    );
    let engine = StaEngine::new(nl, &models, TransitionKind::Fall).expect("engine");
    let err = engine
        .run(&FallbackEvaluator::default())
        .expect_err("all rungs faulted must not succeed");
    qwm::fault::clear();
    let msg = err.to_string();
    assert!(msg.contains("all rungs failed"), "hard error: {msg}");
    for rung in [
        "qwm",
        "qwm-retry",
        "spice-adaptive",
        "spice-fixed",
        "elmore-bound",
    ] {
        assert!(msg.contains(rung), "chain names {rung}: {msg}");
    }
}

/// `run_waveform` satellite pin: a numeric QWM failure no longer skips
/// the arc silently — the arc is still produced (by a transient rung),
/// counted in `waveform_failures`, and its provenance is retrievable.
#[test]
fn run_waveform_degrades_instead_of_skipping() {
    let _g = locked();
    let tech = Technology::cmosp35();
    let models = analytic_models(&tech);
    let nl = chain3(&tech);
    // Clean baseline: which nets get arrivals when nothing fails.
    qwm::fault::clear();
    let engine = StaEngine::new(nl.clone(), &models, TransitionKind::Fall).expect("engine");
    let (clean_fall, clean_rise) = engine
        .run_waveform(&QwmConfig::default(), 30e-12)
        .expect("clean run");
    assert_eq!(engine.total_waveform_failures(), 0);
    assert!(engine.take_waveform_degradations().is_empty());

    qwm::fault::install(
        FaultPlan::new(5)
            .inject("qwm.region", FaultKind::NoConvergence)
            .inject("retry/qwm.region", FaultKind::NoConvergence),
    );
    let engine = StaEngine::new(nl.clone(), &models, TransitionKind::Fall).expect("engine");
    let (fall, rise) = engine
        .run_waveform(&QwmConfig::default(), 30e-12)
        .expect("ladder absorbs QWM faults");
    qwm::fault::clear();
    // Every arc the clean run produced is still present — degraded,
    // not dropped.
    assert_eq!(fall.len(), clean_fall.len(), "no fall arc went missing");
    assert_eq!(rise.len(), clean_rise.len(), "no rise arc went missing");
    assert!(engine.total_waveform_failures() > 0, "failures counted");
    let degs = engine.take_waveform_degradations();
    assert!(!degs.is_empty(), "provenance recorded");
    for d in &degs {
        assert_eq!(d.landed, FallbackRung::SpiceAdaptive, "{}", d.output);
        assert_eq!(
            d.failures.iter().map(|f| f.rung).collect::<Vec<_>>(),
            [FallbackRung::Qwm, FallbackRung::QwmRetry]
        );
    }
    // Degraded arrivals stay physical: close to the clean answer.
    for (net, &t) in &fall {
        let clean = clean_fall[net];
        assert!(
            (t - clean).abs() / clean < 0.15,
            "net {net:?}: degraded {t:.3e} vs clean {clean:.3e}"
        );
    }
}

/// `run_waveform` has no Elmore rung: exhausting its four rungs is a
/// hard error carrying the chain.
#[test]
fn run_waveform_exhaustion_is_a_hard_error() {
    let _g = locked();
    let tech = Technology::cmosp35();
    let models = analytic_models(&tech);
    let nl = chain3(&tech);
    qwm::fault::install(plan_landing_on(
        FallbackRung::ElmoreBound,
        FaultKind::Singular,
    ));
    let engine = StaEngine::new(nl, &models, TransitionKind::Fall).expect("engine");
    let err = engine
        .run_waveform(&QwmConfig::default(), 30e-12)
        .expect_err("no rung left");
    qwm::fault::clear();
    let msg = err.to_string();
    assert!(msg.contains("all fallback rungs failed"), "{msg}");
    for rung in ["qwm", "qwm-retry", "spice-adaptive", "spice-fixed"] {
        assert!(msg.contains(rung), "chain names {rung}: {msg}");
    }
}

/// Property (seeded loop): degradation must never change the answer,
/// only the path to it. With faults confined to the QWM rungs, the
/// fallback engine's delays agree with a direct SPICE-class run within
/// the `engine_agreement.rs` band.
#[test]
fn degraded_delays_agree_with_direct_spice() {
    let _g = locked();
    let tech = Technology::cmosp35();
    let models = analytic_models(&tech);
    for seed in [0x5eed_0001u64, 0x5eed_0002, 0x5eed_0003] {
        let nl = random_dag_netlist(&tech, 10, seed);

        qwm::fault::clear();
        let engine = StaEngine::new(nl.clone(), &models, TransitionKind::Fall).expect("engine");
        let spice = engine
            .run(&SpiceEvaluator::default())
            .expect("direct spice run");

        qwm::fault::install(
            FaultPlan::new(seed)
                .inject("qwm.region", FaultKind::NoConvergence)
                .inject("retry/qwm.region", FaultKind::NoConvergence),
        );
        let engine = StaEngine::new(nl, &models, TransitionKind::Fall).expect("engine");
        let degraded = engine
            .run(&FallbackEvaluator::default())
            .expect("ladder lands on the adaptive rung");
        qwm::fault::clear();

        assert!(
            degraded
                .degradations
                .iter()
                .all(|d| d.landed == FallbackRung::SpiceAdaptive),
            "seed {seed:#x}: QWM-only faults land on the adaptive rung"
        );
        let (_, worst_s) = spice.worst.expect("spice worst");
        let (_, worst_d) = degraded.worst.expect("degraded worst");
        assert!(
            (worst_d - worst_s).abs() / worst_s < 0.05,
            "seed {seed:#x}: degraded worst {worst_d:.3e} vs spice {worst_s:.3e}"
        );
        for (net, &t) in &degraded.arrivals {
            let ts = spice.arrivals[net];
            // Primary inputs arrive at exactly 0 in both runs; compare
            // the rest relatively.
            if ts < 1e-15 {
                assert_eq!(t, ts, "seed {seed:#x} net {net:?}: zero arrival");
                continue;
            }
            assert!(
                (t - ts).abs() / ts < 0.05,
                "seed {seed:#x} net {net:?}: degraded {t:.3e} vs spice {ts:.3e}"
            );
        }
    }
}

/// Corner-scoped fault plans: batched sweeps evaluate each corner
/// inside a `scope(<corner>)` qualifier, so a plan targeting
/// `ss/qwm.region` degrades *only* the ss corner's arcs — the other
/// corners of the same batched run stay byte-identical to a clean
/// sweep, and the ss provenance names the corner via the effective
/// (scope-qualified) site.
#[test]
fn corner_scoped_faults_degrade_only_that_corner() {
    let _g = locked();
    let tech = Technology::cmosp35();
    let corners = parse_corner_list("ss,tt,ff").expect("corners");
    let models = CornerModels::analytic(&tech, &corners);
    let nl = chain3(&tech);
    // One evaluator instance per corner, so degradations pool per
    // corner exactly as N independent runs would.
    let batched_sweep = || {
        let evs: Vec<FallbackEvaluator> = (0..corners.len())
            .map(|_| FallbackEvaluator::default())
            .collect();
        let engine =
            StaEngine::new(nl.clone(), models.set(0), TransitionKind::Fall).expect("engine");
        let runs: Vec<CornerRun> = corners
            .iter()
            .enumerate()
            .map(|(i, c)| CornerRun {
                name: c.interned_name(),
                models: models.set(i),
                evaluator: &evs[i],
            })
            .collect();
        let cr = engine.run_corners(&runs, 30e-12).expect("batched sweep");
        let renders: Vec<String> = cr
            .reports
            .iter()
            .map(|r| golden_report(r, engine.netlist()))
            .collect();
        (cr, renders)
    };

    qwm::fault::clear();
    let (clean, clean_renders) = batched_sweep();
    assert!(
        clean.reports.iter().all(|r| r.degradations.is_empty()),
        "clean sweep degrades nothing"
    );

    // Fault every QWM and adaptive attempt — but only inside the ss
    // corner's scope. OutOfGrid errors carry the effective site, so the
    // provenance lines name the corner.
    qwm::fault::install(
        FaultPlan::new(1)
            .inject("ss/qwm.region", FaultKind::OutOfGrid)
            .inject("ss/retry/qwm.region", FaultKind::OutOfGrid)
            .inject("ss/spice.adaptive", FaultKind::OutOfGrid),
    );
    let (faulted, faulted_renders) = batched_sweep();
    qwm::fault::clear();

    let ss = &faulted.reports[0];
    assert!(!ss.degradations.is_empty(), "ss arcs degrade");
    for d in &ss.degradations {
        assert_eq!(d.landed, FallbackRung::SpiceFixed, "arc {}", d.output);
        assert!(
            d.failures
                .iter()
                .any(|f| f.error.contains("ss/spice.adaptive")),
            "provenance names the corner-scoped site: {:?}",
            d.failures
        );
    }
    assert!(
        faulted_renders[0].contains("ss/spice.adaptive"),
        "golden render carries the corner-qualified provenance:\n{}",
        faulted_renders[0]
    );
    // The un-faulted corners of the very same batched run are
    // byte-identical to the clean sweep — the blast radius of a
    // corner-scoped plan is exactly that corner.
    for i in [1usize, 2] {
        assert!(
            faulted.reports[i].degradations.is_empty(),
            "corner {} must not degrade",
            faulted.corners[i]
        );
        assert_eq!(
            faulted_renders[i], clean_renders[i],
            "corner {} drifted under an ss-scoped plan",
            faulted.corners[i]
        );
    }
}

/// With injection off, the fallback evaluator is pure QWM: no
/// degradations, no provenance lines in the golden render.
#[test]
fn clean_fallback_run_records_nothing() {
    let _g = locked();
    qwm::fault::clear();
    let tech = Technology::cmosp35();
    let models = analytic_models(&tech);
    let report = run_fallback(&chain3(&tech), &models, 2);
    assert!(report.degradations.is_empty(), "clean run degrades nothing");
    assert_eq!(report.waveform_failures, 0);
    let nl = chain3(&tech);
    let engine = StaEngine::new(nl, &models, TransitionKind::Fall).expect("engine");
    let report = engine.run(&FallbackEvaluator::default()).expect("run");
    let rendered = golden_report(&report, engine.netlist());
    assert!(
        !rendered.contains("degrad"),
        "no degradation lines when injection is off:\n{rendered}"
    );
}

/// Chaos-mode smoke test: under whatever `QWM_FAULTS` plan the
/// environment supplies (or a 50 % no-convergence plan when it supplies
/// none), the analysis still completes and the answer stays within the
/// agreement band of a clean run. Probabilistic plans are
/// order-dependent across schedules, so this asserts robustness, not
/// bitwise determinism.
#[test]
fn survives_probabilistic_fault_plans() {
    let _g = locked();
    let tech = Technology::cmosp35();
    let models = analytic_models(&tech);
    let nl = random_dag_netlist(&tech, 12, 0xc4a05);

    qwm::fault::clear();
    let engine = StaEngine::new(nl.clone(), &models, TransitionKind::Fall).expect("engine");
    let clean = engine.run(&FallbackEvaluator::default()).expect("clean");
    let (_, worst_clean) = clean.worst.expect("worst");

    match qwm::fault::FaultPlan::from_env() {
        Some(Ok(plan)) => qwm::fault::install(plan),
        Some(Err(e)) => panic!("malformed QWM_FAULTS: {e}"),
        None => qwm::fault::install(FaultPlan::new(7).inject_with(
            "qwm.region",
            FaultKind::NoConvergence,
            0.5,
            None,
        )),
    }
    for threads in [1usize, 4] {
        let engine = StaEngine::new(nl.clone(), &models, TransitionKind::Fall)
            .expect("engine")
            .with_threads(threads);
        let report = engine
            .run(&FallbackEvaluator::default())
            .expect("ladder absorbs chaos plan");
        let (_, worst) = report.worst.expect("worst");
        assert!(
            (worst - worst_clean).abs() / worst_clean < 0.10,
            "@{threads} threads: chaos worst {worst:.3e} vs clean {worst_clean:.3e}"
        );
    }
    let fired: u64 = qwm::fault::stats().iter().map(|s| s.fired).sum();
    qwm::fault::clear();
    assert!(fired > 0, "the chaos plan actually injected something");
}
