//! Ablation tests: the design choices DESIGN.md calls out must actually
//! behave as claimed — same answers from both linear solvers, bounded
//! effect of the capacitance policy, agreement between iteration schemes
//! and integration methods, and the refined-evaluator accuracy gain.

use qwm::circuit::cells;
use qwm::circuit::waveform::{TransitionKind, Waveform};
use qwm::core::evaluate::{evaluate, QwmConfig};
use qwm::core::solver::{LinearSolver, RegionOptions};
use qwm::device::{analytic_models, Technology};
use qwm::spice::engine::{
    initial_uniform, simulate, Integration, IterationScheme, TransientConfig,
};

fn stack_setup(
    tech: &Technology,
    k: usize,
) -> (
    qwm::circuit::LogicStage,
    Vec<Waveform>,
    Vec<f64>,
    qwm::circuit::NodeId,
) {
    let models = analytic_models(tech);
    let stage = cells::nmos_stack(tech, &vec![1.5e-6; k], cells::DEFAULT_LOAD).unwrap();
    let inputs: Vec<Waveform> = (0..k).map(|_| Waveform::step(0.0, 0.0, tech.vdd)).collect();
    let init = initial_uniform(&stage, &models, tech.vdd);
    let out = stage.node_by_name("out").unwrap();
    (stage, inputs, init, out)
}

#[test]
fn dense_lu_and_bordered_give_identical_transients() {
    let tech = Technology::cmosp35();
    let models = analytic_models(&tech);
    let (stage, inputs, init, out) = stack_setup(&tech, 5);
    let mut delays = Vec::new();
    for solver in [LinearSolver::BorderedTridiagonal, LinearSolver::DenseLu] {
        let cfg = QwmConfig {
            region: RegionOptions {
                linear_solver: solver,
                ..RegionOptions::default()
            },
            ..QwmConfig::default()
        };
        let r = evaluate(
            &stage,
            &models,
            &inputs,
            &init,
            out,
            TransitionKind::Fall,
            &cfg,
        )
        .unwrap();
        delays.push(r.delay_50(tech.vdd, 0.0).unwrap());
    }
    let rel = (delays[0] - delays[1]).abs() / delays[1];
    assert!(rel < 1e-6, "bordered {} vs LU {}", delays[0], delays[1]);
}

#[test]
fn freeze_caps_ablation_shifts_delay_but_bounded() {
    // The paper's presentation assumption 3 (constant parasitics):
    // freezing caps at t=0 changes the delay by a few percent, not more.
    let tech = Technology::cmosp35();
    let models = analytic_models(&tech);
    let (stage, inputs, init, out) = stack_setup(&tech, 6);
    let base = evaluate(
        &stage,
        &models,
        &inputs,
        &init,
        out,
        TransitionKind::Fall,
        &QwmConfig::default(),
    )
    .unwrap()
    .delay_50(tech.vdd, 0.0)
    .unwrap();
    let frozen_cfg = QwmConfig {
        freeze_caps: true,
        ..QwmConfig::default()
    };
    let frozen = evaluate(
        &stage,
        &models,
        &inputs,
        &init,
        out,
        TransitionKind::Fall,
        &frozen_cfg,
    )
    .unwrap()
    .delay_50(tech.vdd, 0.0)
    .unwrap();
    let rel = (frozen - base).abs() / base;
    assert!(rel > 0.0, "the policy must matter at all");
    assert!(rel < 0.10, "but only mildly: {rel}");
}

#[test]
fn refined_preset_beats_default_on_the_hard_case() {
    // Heavy load on a short minimum-width stack: the plain evaluator's
    // worst case; refinement must cut the error substantially.
    let tech = Technology::cmosp35();
    let models = analytic_models(&tech);
    let stage = cells::nmos_stack(&tech, &[0.88e-6, 0.5e-6], 40e-15).unwrap();
    let inputs: Vec<Waveform> = (0..2).map(|_| Waveform::step(0.0, 0.0, tech.vdd)).collect();
    let init = initial_uniform(&stage, &models, tech.vdd);
    let out = stage.node_by_name("out").unwrap();
    let run = |cfg: &QwmConfig| {
        evaluate(
            &stage,
            &models,
            &inputs,
            &init,
            out,
            TransitionKind::Fall,
            cfg,
        )
        .unwrap()
        .delay_50(tech.vdd, 0.0)
        .unwrap()
    };
    let d_plain = run(&QwmConfig::default());
    let d_refined = run(&QwmConfig::refined());
    let s = simulate(
        &stage,
        &models,
        &inputs,
        &init,
        &TransientConfig::hspice_1ps(3.0 * d_plain),
    )
    .unwrap();
    let d_ref = s
        .waveform(out)
        .unwrap()
        .crossing(tech.vdd / 2.0, false)
        .unwrap();
    let e_plain = (d_plain - d_ref).abs() / d_ref;
    let e_refined = (d_refined - d_ref).abs() / d_ref;
    assert!(e_plain > 0.03, "this case is genuinely hard: {e_plain}");
    assert!(
        e_refined < 0.6 * e_plain,
        "refined {e_refined} vs plain {e_plain}"
    );
}

#[test]
fn spice_integration_methods_agree() {
    let tech = Technology::cmosp35();
    let models = analytic_models(&tech);
    let (stage, inputs, init, out) = stack_setup(&tech, 4);
    let mut delays = Vec::new();
    for integration in [Integration::BackwardEuler, Integration::Trapezoidal] {
        let cfg = TransientConfig {
            integration,
            ..TransientConfig::hspice_1ps(500e-12)
        };
        let r = simulate(&stage, &models, &inputs, &init, &cfg).unwrap();
        delays.push(
            r.waveform(out)
                .unwrap()
                .crossing(tech.vdd / 2.0, false)
                .unwrap(),
        );
    }
    assert!((delays[0] - delays[1]).abs() / delays[1] < 0.02);
}

#[test]
fn successive_chords_matches_newton_and_factors_less() {
    let tech = Technology::cmosp35();
    let models = analytic_models(&tech);
    let (stage, inputs, init, out) = stack_setup(&tech, 4);
    let nr_cfg = TransientConfig::hspice_1ps(500e-12);
    let sc_cfg = TransientConfig {
        iteration: IterationScheme::SuccessiveChords,
        ..nr_cfg
    };
    let nr = simulate(&stage, &models, &inputs, &init, &nr_cfg).unwrap();
    let sc = simulate(&stage, &models, &inputs, &init, &sc_cfg).unwrap();
    let dn = nr.waveform(out).unwrap().crossing(1.65, false).unwrap();
    let ds = sc.waveform(out).unwrap().crossing(1.65, false).unwrap();
    assert!((dn - ds).abs() / dn < 0.02);
    assert!(
        sc.factorizations <= nr.factorizations,
        "sc {} vs nr {}",
        sc.factorizations,
        nr.factorizations
    );
    assert!(sc.iterations >= nr.iterations, "chords trade iterations");
}

#[test]
fn ten_ps_step_is_faster_but_less_accurate() {
    // The Table I/II cost-accuracy axis of the baseline itself.
    let tech = Technology::cmosp35();
    let models = analytic_models(&tech);
    let (stage, inputs, init, out) = stack_setup(&tech, 6);
    let r1 = simulate(
        &stage,
        &models,
        &inputs,
        &init,
        &TransientConfig::hspice_1ps(600e-12),
    )
    .unwrap();
    let r10 = simulate(
        &stage,
        &models,
        &inputs,
        &init,
        &TransientConfig::hspice_10ps(600e-12),
    )
    .unwrap();
    assert!(r10.iterations < r1.iterations / 3);
    let d1 = r1.waveform(out).unwrap().crossing(1.65, false).unwrap();
    let d10 = r10.waveform(out).unwrap().crossing(1.65, false).unwrap();
    assert!((d1 - d10).abs() / d1 < 0.08, "10ps within 8% of 1ps");
}

#[test]
fn qwm_iteration_count_scales_linearly_with_k() {
    // The complexity claim: ~K solves of bounded iteration count, so
    // total Newton iterations grow linearly in K, not quadratically.
    let tech = Technology::cmosp35();
    let models = analytic_models(&tech);
    let mut iters = Vec::new();
    for k in [4usize, 8, 12] {
        let (stage, inputs, init, out) = stack_setup(&tech, k);
        let r = evaluate(
            &stage,
            &models,
            &inputs,
            &init,
            out,
            TransitionKind::Fall,
            &QwmConfig::default(),
        )
        .unwrap();
        iters.push(r.iterations as f64 / k as f64);
    }
    // Iterations-per-transistor stays within a 2.5x band across K.
    let max = iters.iter().cloned().fold(f64::MIN, f64::max);
    let min = iters.iter().cloned().fold(f64::MAX, f64::min);
    assert!(max / min < 2.5, "per-K iterations {iters:?}");
}

#[test]
fn waveform_order_two_improves_the_hard_case_further() {
    // The r = 2 collocation model (QwmConfig::high_accuracy) must beat
    // the plain evaluator decisively on the heavy-load short stack.
    let tech = Technology::cmosp35();
    let models = analytic_models(&tech);
    let stage = cells::nmos_stack(&tech, &[0.88e-6, 0.5e-6], 40e-15).unwrap();
    let inputs: Vec<Waveform> = (0..2).map(|_| Waveform::step(0.0, 0.0, tech.vdd)).collect();
    let init = initial_uniform(&stage, &models, tech.vdd);
    let out = stage.node_by_name("out").unwrap();
    let run = |cfg: &QwmConfig| {
        evaluate(
            &stage,
            &models,
            &inputs,
            &init,
            out,
            TransitionKind::Fall,
            cfg,
        )
        .unwrap()
        .delay_50(tech.vdd, 0.0)
        .unwrap()
    };
    let d1 = run(&QwmConfig::default());
    let d2 = run(&QwmConfig::high_accuracy());
    let s = simulate(
        &stage,
        &models,
        &inputs,
        &init,
        &TransientConfig::hspice_1ps(3.0 * d1),
    )
    .unwrap();
    let d_ref = s
        .waveform(out)
        .unwrap()
        .crossing(tech.vdd / 2.0, false)
        .unwrap();
    let e1 = (d1 - d_ref).abs() / d_ref;
    let e2 = (d2 - d_ref).abs() / d_ref;
    assert!(e2 < 0.5 * e1, "r=2 {e2} vs r=1 {e1}");
    assert!(e2 < 0.03, "r=2 error {e2}");
}

#[test]
fn waveform_order_two_pieces_are_continuous() {
    // Each r = 2 region commits two pieces; the waveform must stay
    // continuous across the midpoints.
    let tech = Technology::cmosp35();
    let models = analytic_models(&tech);
    let (stage, inputs, init, out) = stack_setup(&tech, 5);
    let cfg = QwmConfig::high_accuracy();
    let r = evaluate(
        &stage,
        &models,
        &inputs,
        &init,
        out,
        TransitionKind::Fall,
        &cfg,
    )
    .unwrap();
    for w in &r.waveforms {
        for pair in w.pieces().windows(2) {
            let v_end = pair[0].end_voltage();
            let v_start = pair[1].v0;
            // Continuity holds to the charge-residual tolerance
            // (sub-millivolt), not to machine precision.
            assert!(
                (v_end - v_start).abs() < 1e-3,
                "discontinuity {v_end} vs {v_start}"
            );
        }
    }
    // Roughly two pieces per committed region.
    assert!(r.waveforms[0].pieces().len() >= r.regions);
}
