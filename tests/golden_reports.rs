//! Golden-file regression test: the canonical report for
//! `testdata/path4.sp` must match the blessed snapshot byte for byte.
//!
//! The snapshot is rendered with [`qwm::sta::report::golden_report`]
//! (sorted nets, `{:?}` floats — exact bit round-trips), so any diff is
//! a real numeric change in the timing pipeline, not formatting noise.
//! Re-bless intentionally changed numbers with:
//!
//! ```text
//! QWM_BLESS=1 cargo test --test golden_reports
//! ```

use qwm::circuit::parser::parse_netlist;
use qwm::circuit::waveform::TransitionKind;
use qwm::device::{analytic_models, parse_corner_list, CornerModels, Technology};
use qwm::fault::{FaultKind, FaultPlan};
use qwm::sta::engine::StaEngine;
use qwm::sta::evaluator::{FallbackEvaluator, QwmEvaluator};
use qwm::sta::report::{golden_corner_report, golden_report};
use qwm::sta::CornerRun;
use std::path::Path;
use std::sync::Mutex;

const GOLDEN: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/testdata/golden/path4.report");
const GOLDEN_DEGRADED: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/testdata/golden/path4_degraded.report"
);
const GOLDEN_CORNERS: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/testdata/golden/path4_corners.report"
);

/// The degraded snapshot installs a process-global fault plan, so every
/// test in this binary serializes on one mutex and starts from a clean
/// plan.
static LOCK: Mutex<()> = Mutex::new(());

fn locked() -> std::sync::MutexGuard<'static, ()> {
    let g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    qwm::fault::clear();
    g
}

fn render_path4_report() -> String {
    let text = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/testdata/path4.sp"))
        .expect("read path4.sp");
    let nl = parse_netlist(&text).expect("parse path4.sp");
    let tech = Technology::cmosp35();
    let models = analytic_models(&tech);
    let engine = StaEngine::new(nl, &models, TransitionKind::Fall).expect("engine");
    let report = engine
        .run_with_slew(&QwmEvaluator::default(), 30e-12)
        .expect("slew-aware run");
    golden_report(&report, engine.netlist())
}

/// Renders path4 under a deterministic fault plan that fails both QWM
/// attempts on every region solve: each arc descends the fallback
/// ladder and lands on the adaptive-transient rung, and the snapshot
/// pins arrivals, slews *and* the degradation provenance lines.
fn render_path4_degraded_report() -> String {
    let text = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/testdata/path4.sp"))
        .expect("read path4.sp");
    let nl = parse_netlist(&text).expect("parse path4.sp");
    let tech = Technology::cmosp35();
    let models = analytic_models(&tech);
    let engine = StaEngine::new(nl, &models, TransitionKind::Fall).expect("engine");
    qwm::fault::install(
        FaultPlan::new(1)
            .inject("qwm.region", FaultKind::NoConvergence)
            .inject("retry/qwm.region", FaultKind::NoConvergence),
    );
    let report = engine
        .run_with_slew(&FallbackEvaluator::default(), 30e-12)
        .expect("ladder absorbs the injected faults");
    qwm::fault::clear();
    golden_report(&report, engine.netlist())
}

fn assert_matches_golden(rendered: &str, path: &str) {
    if std::env::var_os("QWM_BLESS").is_some() {
        std::fs::create_dir_all(Path::new(path).parent().unwrap()).expect("mkdir golden");
        std::fs::write(path, rendered).expect("write golden");
        eprintln!("blessed {path}");
        return;
    }
    let golden = std::fs::read_to_string(path).unwrap_or_else(|e| {
        panic!(
            "cannot read {path}: {e}\n\
             generate it with: QWM_BLESS=1 cargo test --test golden_reports"
        )
    });
    assert_eq!(
        rendered, &golden,
        "timing report drifted from the blessed snapshot {path}.\n\
         If the change is intentional, re-bless with:\n\
         QWM_BLESS=1 cargo test --test golden_reports"
    );
}

/// Renders the batched ss/tt/ff sweep of path4 at `threads` workers:
/// worst-corner header, per-net corner provenance, then each corner's
/// full single-corner golden body.
fn render_path4_corners_report(threads: usize) -> String {
    let text = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/testdata/path4.sp"))
        .expect("read path4.sp");
    let nl = parse_netlist(&text).expect("parse path4.sp");
    let tech = Technology::cmosp35();
    let corners = parse_corner_list("ss,tt,ff").expect("corners");
    let models = CornerModels::analytic(&tech, &corners);
    let engine = StaEngine::new(nl, models.set(0), TransitionKind::Fall)
        .expect("engine")
        .with_threads(threads);
    let ev = QwmEvaluator::default();
    let runs: Vec<CornerRun> = corners
        .iter()
        .enumerate()
        .map(|(i, c)| CornerRun {
            name: c.interned_name(),
            models: models.set(i),
            evaluator: &ev,
        })
        .collect();
    let cr = engine.run_corners(&runs, 30e-12).expect("batched sweep");
    golden_corner_report(&cr, engine.netlist())
}

#[test]
fn path4_report_matches_golden_snapshot() {
    let _g = locked();
    let rendered = render_path4_report();
    assert_matches_golden(&rendered, GOLDEN);
}

#[test]
fn path4_corners_report_matches_golden_snapshot() {
    let _g = locked();
    let rendered = render_path4_corners_report(1);
    assert!(rendered.starts_with("corners ss,tt,ff\nworst_corner ss "));
    assert_matches_golden(&rendered, GOLDEN_CORNERS);
    // The snapshot must not depend on the worker count.
    for threads in [3usize, 8] {
        assert_eq!(
            render_path4_corners_report(threads),
            rendered,
            "corner snapshot differs at {threads} workers"
        );
    }
}

/// Compatibility pin: the `tt` body inside the corner snapshot — and a
/// single-corner `tt` sweep — are byte-identical to the pre-corner
/// `path4.report` snapshot. The corner axis must cost existing users
/// nothing, not even a bit.
#[test]
fn nominal_corner_body_is_byte_identical_to_the_classic_snapshot() {
    let _g = locked();
    let classic = render_path4_report();
    let sweep = render_path4_corners_report(1);
    let tt_body: String = sweep
        .lines()
        .skip_while(|l| *l != "corner tt")
        .skip(1)
        .take_while(|l| !l.starts_with("corner "))
        .map(|l| format!("{l}\n"))
        .collect();
    assert_eq!(tt_body, classic, "tt body inside the sweep drifted");

    let text = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/testdata/path4.sp"))
        .expect("read path4.sp");
    let nl = parse_netlist(&text).expect("parse path4.sp");
    let tech = Technology::cmosp35();
    let corners = parse_corner_list("tt").expect("corners");
    let models = CornerModels::analytic(&tech, &corners);
    let engine = StaEngine::new(nl, models.set(0), TransitionKind::Fall).expect("engine");
    let ev = QwmEvaluator::default();
    let runs = [CornerRun {
        name: corners[0].interned_name(),
        models: models.set(0),
        evaluator: &ev,
    }];
    let cr = engine.run_corners(&runs, 30e-12).expect("tt sweep");
    assert_eq!(
        golden_report(&cr.reports[0], engine.netlist()),
        classic,
        "a single-corner tt sweep must render the classic bytes"
    );
}

#[test]
fn path4_degraded_report_matches_golden_snapshot() {
    let _g = locked();
    let rendered = render_path4_degraded_report();
    assert!(
        rendered.contains("degradations "),
        "degraded snapshot carries provenance:\n{rendered}"
    );
    assert_matches_golden(&rendered, GOLDEN_DEGRADED);
}

/// Zero-overhead-when-off pin: with injection disabled, the fallback
/// evaluator renders the same arrivals and slews as plain QWM — the
/// clean `path4.report` bytes, with only the evaluation count differing
/// (the fallback evaluator caches under its own namespace).
#[test]
fn clean_fallback_render_matches_qwm_lines() {
    let _g = locked();
    let text = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/testdata/path4.sp"))
        .expect("read path4.sp");
    let nl = parse_netlist(&text).expect("parse path4.sp");
    let tech = Technology::cmosp35();
    let models = analytic_models(&tech);
    let engine = StaEngine::new(nl, &models, TransitionKind::Fall).expect("engine");
    let report = engine
        .run_with_slew(&FallbackEvaluator::default(), 30e-12)
        .expect("clean fallback run");
    let rendered = golden_report(&report, engine.netlist());
    assert!(!rendered.contains("degrad"), "no provenance lines when off");
    let qwm_render = render_path4_report();
    let qwm_lines: Vec<&str> = qwm_render
        .lines()
        .filter(|l| !l.starts_with("evaluations"))
        .map(str::trim_end)
        .collect();
    let fb_lines: Vec<&str> = rendered
        .lines()
        .filter(|l| !l.starts_with("evaluations"))
        .map(str::trim_end)
        .collect();
    assert_eq!(qwm_lines, fb_lines, "clean fallback == QWM byte for byte");
}

#[test]
fn golden_render_is_thread_count_invariant() {
    // The snapshot itself must not depend on QWM_THREADS: render at
    // several worker counts and require byte equality.
    let _g = locked();
    let text = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/testdata/path4.sp"))
        .expect("read path4.sp");
    let tech = Technology::cmosp35();
    let models = analytic_models(&tech);
    let mut renders = Vec::new();
    for threads in [1usize, 3, 8] {
        let nl = parse_netlist(&text).expect("parse");
        let engine = StaEngine::new(nl, &models, TransitionKind::Fall)
            .expect("engine")
            .with_threads(threads);
        let report = engine
            .run_with_slew(&QwmEvaluator::default(), 30e-12)
            .expect("run");
        renders.push(golden_report(&report, engine.netlist()));
    }
    assert_eq!(renders[0], renders[1]);
    assert_eq!(renders[0], renders[2]);
}
