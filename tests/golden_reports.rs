//! Golden-file regression test: the canonical report for
//! `testdata/path4.sp` must match the blessed snapshot byte for byte.
//!
//! The snapshot is rendered with [`qwm::sta::report::golden_report`]
//! (sorted nets, `{:?}` floats — exact bit round-trips), so any diff is
//! a real numeric change in the timing pipeline, not formatting noise.
//! Re-bless intentionally changed numbers with:
//!
//! ```text
//! QWM_BLESS=1 cargo test --test golden_reports
//! ```

use qwm::circuit::parser::parse_netlist;
use qwm::circuit::waveform::TransitionKind;
use qwm::device::{analytic_models, Technology};
use qwm::sta::engine::StaEngine;
use qwm::sta::evaluator::QwmEvaluator;
use qwm::sta::report::golden_report;
use std::path::Path;

const GOLDEN: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/testdata/golden/path4.report");

fn render_path4_report() -> String {
    let text = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/testdata/path4.sp"))
        .expect("read path4.sp");
    let nl = parse_netlist(&text).expect("parse path4.sp");
    let tech = Technology::cmosp35();
    let models = analytic_models(&tech);
    let engine = StaEngine::new(nl, &models, TransitionKind::Fall).expect("engine");
    let report = engine
        .run_with_slew(&QwmEvaluator::default(), 30e-12)
        .expect("slew-aware run");
    golden_report(&report, engine.netlist())
}

#[test]
fn path4_report_matches_golden_snapshot() {
    let rendered = render_path4_report();
    if std::env::var_os("QWM_BLESS").is_some() {
        std::fs::create_dir_all(Path::new(GOLDEN).parent().unwrap()).expect("mkdir golden");
        std::fs::write(GOLDEN, &rendered).expect("write golden");
        eprintln!("blessed {GOLDEN}");
        return;
    }
    let golden = std::fs::read_to_string(GOLDEN).unwrap_or_else(|e| {
        panic!(
            "cannot read {GOLDEN}: {e}\n\
             generate it with: QWM_BLESS=1 cargo test --test golden_reports"
        )
    });
    assert_eq!(
        rendered, golden,
        "path4 timing report drifted from the blessed snapshot.\n\
         If the change is intentional, re-bless with:\n\
         QWM_BLESS=1 cargo test --test golden_reports"
    );
}

#[test]
fn golden_render_is_thread_count_invariant() {
    // The snapshot itself must not depend on QWM_THREADS: render at
    // several worker counts and require byte equality.
    let text = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/testdata/path4.sp"))
        .expect("read path4.sp");
    let tech = Technology::cmosp35();
    let models = analytic_models(&tech);
    let mut renders = Vec::new();
    for threads in [1usize, 3, 8] {
        let nl = parse_netlist(&text).expect("parse");
        let engine = StaEngine::new(nl, &models, TransitionKind::Fall)
            .expect("engine")
            .with_threads(threads);
        let report = engine
            .run_with_slew(&QwmEvaluator::default(), 30e-12)
            .expect("run");
        renders.push(golden_report(&report, engine.netlist()));
    }
    assert_eq!(renders[0], renders[1]);
    assert_eq!(renders[0], renders[2]);
}
