//! Determinism lock-down for the parallel STA engine: every analysis
//! mode, on every workload, must produce bitwise-identical reports at
//! 1, 2, 4 and 8 workers.
//!
//! The engine's contract is determinism *by construction* (single
//! committer per net, happens-before via the dependency countdown), so
//! these tests compare with exact `f64` equality — any epsilon would
//! hide a real scheduling leak.

use qwm::circuit::parser::parse_netlist;
use qwm::circuit::waveform::TransitionKind;
use qwm::core::evaluate::QwmConfig;
use qwm::device::{analytic_models, ModelSet, Technology};
use qwm::sta::engine::{StaEngine, TimingReport};
use qwm::sta::evaluator::{ElmoreEvaluator, QwmEvaluator, SpiceEvaluator, StageEvaluator};
use qwm::sta::graph::{inverter_chain, random_dag_netlist};
use std::collections::HashMap;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Exact, field-by-field report comparison (sorted iteration so the
/// failure message names the first diverging net deterministically).
fn assert_reports_identical(a: &TimingReport, b: &TimingReport, what: &str) {
    assert_eq!(a.evaluations, b.evaluations, "{what}: evaluation count");
    assert_eq!(
        a.waveform_failures, b.waveform_failures,
        "{what}: waveform failures"
    );
    assert_eq!(a.worst, b.worst, "{what}: worst endpoint");
    assert_eq!(a.critical_path, b.critical_path, "{what}: critical path");
    let sorted = |m: &HashMap<qwm::circuit::netlist::NetId, f64>| {
        let mut v: Vec<(usize, f64)> = m.iter().map(|(k, &x)| (k.0, x)).collect();
        v.sort_by_key(|&(k, _)| k);
        v
    };
    assert_eq!(
        sorted(&a.arrivals),
        sorted(&b.arrivals),
        "{what}: arrivals (exact)"
    );
    assert_eq!(sorted(&a.slews), sorted(&b.slews), "{what}: slews (exact)");
}

/// Runs `f` against a fresh engine per worker count (caches persist
/// inside an engine, so sharing one would only time the first run) and
/// asserts every report matches the single-worker baseline bitwise.
fn check_all_thread_counts(
    nl: &qwm::circuit::netlist::Netlist,
    models: &ModelSet,
    what: &str,
    f: impl Fn(&StaEngine) -> TimingReport,
) {
    let mut baseline: Option<TimingReport> = None;
    for threads in THREAD_COUNTS {
        let engine = StaEngine::new(nl.clone(), models, TransitionKind::Fall)
            .expect("engine")
            .with_threads(threads);
        let report = f(&engine);
        if let Some(base) = &baseline {
            assert_reports_identical(base, &report, &format!("{what} @ {threads} threads"));
        } else {
            baseline = Some(report);
        }
    }
}

#[test]
fn every_evaluator_is_deterministic_on_inverter_chains() {
    let tech = Technology::cmosp35();
    let models = analytic_models(&tech);
    let nl = inverter_chain(&tech, 12, 10e-15);
    let evaluators: [(&str, Box<dyn StageEvaluator>); 3] = [
        ("elmore", Box::new(ElmoreEvaluator)),
        ("qwm", Box::new(QwmEvaluator::default())),
        ("spice", Box::new(SpiceEvaluator::default())),
    ];
    for (name, ev) in &evaluators {
        check_all_thread_counts(&nl, &models, &format!("chain/{name}/run"), |e| {
            e.run(ev.as_ref()).expect("run")
        });
        check_all_thread_counts(&nl, &models, &format!("chain/{name}/slew"), |e| {
            e.run_with_slew(ev.as_ref(), 25e-12).expect("run_with_slew")
        });
    }
}

#[test]
fn every_evaluator_is_deterministic_on_path4() {
    let text = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/testdata/path4.sp"))
        .expect("read path4.sp");
    let nl = parse_netlist(&text).expect("parse");
    let tech = Technology::cmosp35();
    let models = analytic_models(&tech);
    let evaluators: [(&str, Box<dyn StageEvaluator>); 3] = [
        ("elmore", Box::new(ElmoreEvaluator)),
        ("qwm", Box::new(QwmEvaluator::default())),
        ("spice", Box::new(SpiceEvaluator::default())),
    ];
    for (name, ev) in &evaluators {
        check_all_thread_counts(&nl, &models, &format!("path4/{name}/run"), |e| {
            e.run(ev.as_ref()).expect("run")
        });
        check_all_thread_counts(&nl, &models, &format!("path4/{name}/slew"), |e| {
            e.run_with_slew(ev.as_ref(), 30e-12).expect("run_with_slew")
        });
    }
}

#[test]
fn random_dag_is_deterministic_across_workers() {
    let tech = Technology::cmosp35();
    let models = analytic_models(&tech);
    // 200 gates, wide enough that many stages are in flight at once.
    let nl = random_dag_netlist(&tech, 200, 0xdead_beef);
    check_all_thread_counts(&nl, &models, "dag200/elmore/run", |e| {
        e.run(&ElmoreEvaluator).expect("run")
    });
    check_all_thread_counts(&nl, &models, "dag200/qwm/slew", |e| {
        e.run_with_slew(&QwmEvaluator::default(), 20e-12)
            .expect("run_with_slew")
    });
}

#[test]
fn dual_polarity_is_deterministic_across_workers() {
    let tech = Technology::cmosp35();
    let models = analytic_models(&tech);
    let nl = random_dag_netlist(&tech, 80, 0x0bad_cafe);
    let mut baseline: Option<(TimingReport, TimingReport)> = None;
    for threads in THREAD_COUNTS {
        let engine = StaEngine::new(nl.clone(), &models, TransitionKind::Fall)
            .expect("engine")
            .with_threads(threads);
        let (fall, rise) = engine
            .run_dual(&QwmEvaluator::default(), 15e-12)
            .expect("run_dual");
        if let Some((bf, br)) = &baseline {
            assert_reports_identical(bf, &fall, &format!("dual/fall @ {threads}"));
            assert_reports_identical(br, &rise, &format!("dual/rise @ {threads}"));
        } else {
            baseline = Some((fall, rise));
        }
    }
}

#[test]
fn waveform_accurate_run_is_deterministic_across_workers() {
    let tech = Technology::cmosp35();
    let models = analytic_models(&tech);
    // Smaller DAG: full QWM waveform evaluation per stage × transition.
    let nl = random_dag_netlist(&tech, 40, 0x00c0_ffee);
    let config = QwmConfig::default();
    type Snapshot = (Vec<(usize, f64)>, Vec<(usize, f64)>, usize);
    let mut baseline: Option<Snapshot> = None;
    for threads in THREAD_COUNTS {
        let engine = StaEngine::new(nl.clone(), &models, TransitionKind::Fall)
            .expect("engine")
            .with_threads(threads);
        let (fall, rise) = engine.run_waveform(&config, 20e-12).expect("run_waveform");
        let sorted = |m: HashMap<qwm::circuit::netlist::NetId, f64>| {
            let mut v: Vec<(usize, f64)> = m.into_iter().map(|(k, x)| (k.0, x)).collect();
            v.sort_by_key(|&(k, _)| k);
            v
        };
        let snap = (sorted(fall), sorted(rise), engine.total_waveform_failures());
        if let Some(base) = &baseline {
            assert_eq!(base, &snap, "waveform run @ {threads} threads");
        } else {
            baseline = Some(snap);
        }
    }
}

#[test]
fn resize_then_parallel_rerun_invalidates_the_right_caches() {
    let tech = Technology::cmosp35();
    let models = analytic_models(&tech);
    let nl = inverter_chain(&tech, 6, 10e-15);

    // Parallel engine: full run, resize, incremental rerun at 4 workers.
    let mut par = StaEngine::new(nl.clone(), &models, TransitionKind::Fall)
        .expect("engine")
        .with_threads(4);
    let full = par.run(&QwmEvaluator::default()).expect("full run");
    assert_eq!(full.evaluations, 6);
    par.resize_device(4, 4.0 * tech.w_min).expect("resize");
    let incr = par.run(&QwmEvaluator::default()).expect("incremental");
    assert_eq!(
        incr.evaluations, 2,
        "only the resized stage and its re-loaded driver re-evaluate"
    );

    // Reference: a fresh single-worker engine over the resized netlist
    // must agree bitwise with the incremental parallel rerun.
    let mut fresh = StaEngine::new(nl, &models, TransitionKind::Fall)
        .expect("engine")
        .with_threads(1);
    fresh.resize_device(4, 4.0 * tech.w_min).expect("resize");
    let reference = fresh.run(&QwmEvaluator::default()).expect("reference");
    assert_eq!(reference.evaluations, 6, "fresh engine evaluates all");
    assert_eq!(incr.worst, reference.worst, "incremental == from-scratch");
    let sorted = |m: &HashMap<qwm::circuit::netlist::NetId, f64>| {
        let mut v: Vec<(usize, f64)> = m.iter().map(|(k, &x)| (k.0, x)).collect();
        v.sort_by_key(|&(k, _)| k);
        v
    };
    assert_eq!(sorted(&incr.arrivals), sorted(&reference.arrivals));
}
