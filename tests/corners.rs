//! Determinism matrix for batched multi-corner evaluation.
//!
//! The contract under test: a batched N-corner sweep
//! ([`StaEngine::run_corners`] / [`StaEngine::run_incremental_corners`])
//! is **bitwise-identical**, corner by corner, to N independent
//! single-corner engines — at any worker count, cold or warm, across
//! arbitrary edit sequences. Exact `f64` equality throughout: an
//! epsilon would hide a cache-aliasing or propagation bug.

use qwm::circuit::waveform::TransitionKind;
use qwm::device::{parse_corner_list, Corner, CornerModels, Technology};
use qwm::num::rng::Rng64;
use qwm::sta::engine::{StaEngine, TimingReport};
use qwm::sta::evaluator::{ElmoreEvaluator, QwmEvaluator, StageEvaluator};
use qwm::sta::graph::{inverter_chain, random_dag_netlist};
use qwm::sta::report::golden_report;
use qwm::sta::CornerRun;

const THREADS: [usize; 3] = [1, 4, 8];

/// Builds the batched runs for a corner list sharing one evaluator.
fn runs_for<'a>(models: &'a CornerModels, evaluator: &'a dyn StageEvaluator) -> Vec<CornerRun<'a>> {
    models
        .corners()
        .iter()
        .enumerate()
        .map(|(i, c)| CornerRun {
            name: c.interned_name(),
            models: models.set(i),
            evaluator,
        })
        .collect()
}

/// Satellite 1: a batched N-corner run is byte-identical (full golden
/// render, evaluation counters included) to N independent
/// single-corner runs, at 1, 4 and 8 workers — and the batched bytes
/// are themselves invariant across worker counts.
#[test]
fn batched_sweep_matches_independent_runs_at_any_worker_count() {
    let tech = Technology::cmosp35();
    let corners = parse_corner_list("ss,tt,ff,sf,fs").expect("corners");
    let models = CornerModels::analytic(&tech, &corners);
    let ev = ElmoreEvaluator;
    let nl = random_dag_netlist(&tech, 200, 0xdead_beef);
    let slew = 20e-12;

    // Independent reference runs, one fresh engine per corner.
    let reference: Vec<String> = corners
        .iter()
        .enumerate()
        .map(|(i, _)| {
            let engine = StaEngine::new(nl.clone(), models.set(i), TransitionKind::Fall)
                .expect("reference engine");
            let report = engine.run_with_slew(&ev, slew).expect("reference run");
            golden_report(&report, engine.netlist())
        })
        .collect();

    let mut per_thread: Vec<String> = Vec::new();
    for threads in THREADS {
        let engine = StaEngine::new(nl.clone(), models.set(0), TransitionKind::Fall)
            .expect("batched engine")
            .with_threads(threads);
        let runs = runs_for(&models, &ev);
        let cr = engine.run_corners(&runs, slew).expect("batched run");
        assert_eq!(cr.corners, ["ss", "tt", "ff", "sf", "fs"]);
        for (i, report) in cr.reports.iter().enumerate() {
            assert_eq!(
                golden_report(report, engine.netlist()),
                reference[i],
                "corner {} @ {threads} threads differs from its independent run",
                cr.corners[i]
            );
        }
        per_thread.push(
            cr.reports
                .iter()
                .map(|r| golden_report(r, engine.netlist()))
                .collect::<Vec<_>>()
                .join("\x00"),
        );
    }
    assert!(
        per_thread.windows(2).all(|w| w[0] == w[1]),
        "batched sweep must be byte-identical across worker counts"
    );
}

/// Satellite 4: two corners whose arcs see *identical* input slews must
/// never alias in the delay cache — the corner name is part of the key.
/// At the first stage every corner's lookup differs only by corner
/// (same stage, same output, same seeded slew, same direction), so a
/// dropped corner field would hand ff the ss entry verbatim.
#[test]
fn corners_with_identical_slews_never_alias_in_the_cache() {
    let tech = Technology::cmosp35();
    let corners = parse_corner_list("ss,ff").expect("corners");
    let models = CornerModels::analytic(&tech, &corners);
    let ev = ElmoreEvaluator;
    let nl = inverter_chain(&tech, 5, 10e-15);
    let engine = StaEngine::new(nl, models.set(0), TransitionKind::Fall).expect("engine");
    let runs = runs_for(&models, &ev);
    let cold = engine.run_corners(&runs, 15e-12).expect("cold sweep");
    let n1 = engine.netlist().find_net("n1").expect("first stage output");
    let a_ss = cold.reports[0].arrivals[&n1];
    let a_ff = cold.reports[1].arrivals[&n1];
    assert_ne!(
        a_ss.to_bits(),
        a_ff.to_bits(),
        "ss and ff share every cache-key field except the corner; equal \
         first-stage arrivals mean the corner aliased"
    );
    assert!(a_ss > a_ff, "slow corner must be slower");
    // A second sweep over the now-warm cache must serve every corner
    // its *own* entries: zero fresh evaluations, numerically
    // byte-identical to the cold sweep.
    let warm = engine.run_corners(&runs, 15e-12).expect("warm sweep");
    let body = |r: &TimingReport| -> String {
        golden_report(r, engine.netlist())
            .lines()
            .filter(|l| !l.starts_with("evaluations "))
            .collect::<Vec<_>>()
            .join("\n")
    };
    for (i, (c, w)) in cold.reports.iter().zip(&warm.reports).enumerate() {
        assert_eq!(w.evaluations, 0, "warm sweep must be fully cached");
        assert_eq!(
            body(c),
            body(w),
            "corner {} served someone else's cache entries",
            cold.corners[i]
        );
    }
}

/// Exact per-corner report-body comparison (`evaluations` excluded: an
/// incremental run legitimately evaluates fewer arcs than a cold one).
fn assert_bodies_identical(a: &TimingReport, b: &TimingReport, what: &str) {
    assert_eq!(a.worst, b.worst, "{what}: worst endpoint");
    assert_eq!(a.critical_path, b.critical_path, "{what}: critical path");
    let sorted = |m: &std::collections::HashMap<qwm::circuit::netlist::NetId, f64>| {
        let mut v: Vec<(usize, u64)> = m.iter().map(|(k, &x)| (k.0, x.to_bits())).collect();
        v.sort_by_key(|&(k, _)| k);
        v
    };
    assert_eq!(
        sorted(&a.arrivals),
        sorted(&b.arrivals),
        "{what}: arrivals (exact bits)"
    );
    assert_eq!(
        sorted(&a.slews),
        sorted(&b.slews),
        "{what}: slews (exact bits)"
    );
}

/// Draws a random resize or load edit against the current netlist.
fn random_edit(rng: &mut Rng64, engine: &StaEngine, tech: &Technology) -> (String, EditOp) {
    if rng.next_u64().is_multiple_of(2) {
        let device = (rng.next_u64() as usize) % engine.netlist().devices().len();
        let w = tech.w_min * (1.0 + 3.0 * rng.unit());
        (
            format!("resize device {device} to {w:.3e}"),
            EditOp::Resize(device, w),
        )
    } else {
        let net = loop {
            let n = qwm::circuit::netlist::NetId(
                (rng.next_u64() as usize) % engine.netlist().net_count(),
            );
            if !engine.netlist().is_rail(n) && !engine.netlist().primary_inputs().contains(&n) {
                break n;
            }
        };
        let cap = 1e-15 + 9e-15 * rng.unit();
        (
            format!("load net {} to {cap:.3e}", net.0),
            EditOp::Load(net, cap),
        )
    }
}

enum EditOp {
    Resize(usize, f64),
    Load(qwm::circuit::netlist::NetId, f64),
}

impl EditOp {
    fn apply(&self, engine: &mut StaEngine) {
        match *self {
            EditOp::Resize(d, w) => engine.resize_device(d, w).expect("resize applies"),
            EditOp::Load(n, c) => engine.set_net_load(n, c).expect("load applies"),
        }
    }
}

/// Satellite 1 (property half): seeded random DAGs × random edit
/// sequences — every incremental corner sweep matches fresh cold
/// single-corner engines over the identically edited netlist, bitwise,
/// at 1 and 4 workers, without falling back to a full run.
#[test]
fn random_edit_sequences_match_cold_corner_runs() {
    let tech = Technology::cmosp35();
    let corners = parse_corner_list("ss,tt,ff").expect("corners");
    let models = CornerModels::analytic(&tech, &corners);
    let ev = ElmoreEvaluator;
    for seed in [0xC04E_u64, 0x5EED] {
        let nl = random_dag_netlist(&tech, 60, seed);
        for threads in [1usize, 4] {
            let mut engine = StaEngine::new(nl.clone(), models.set(0), TransitionKind::Fall)
                .expect("engine")
                .with_threads(threads);
            engine.set_input_slew(15e-12).expect("slew");
            let runs = runs_for(&models, &ev);
            let _ = engine.run_incremental_corners(&runs).expect("seed sweep");
            assert!(engine.incremental_stats().full_run, "first sweep is full");
            let mut rng = Rng64::seed_from_u64(seed ^ 0xABCD);
            for round in 0..5 {
                let (desc, edit) = random_edit(&mut rng, &engine, &tech);
                edit.apply(&mut engine);
                let runs = runs_for(&models, &ev);
                let cr = engine.run_incremental_corners(&runs).expect("warm sweep");
                let stats = engine.incremental_stats();
                assert!(
                    !stats.full_run,
                    "seed {seed:#x} round {round}: edits must stay incremental"
                );
                for (i, report) in cr.reports.iter().enumerate() {
                    let cold = StaEngine::new(
                        engine.netlist().clone(),
                        models.set(i),
                        TransitionKind::Fall,
                    )
                    .expect("cold engine")
                    .with_threads(threads)
                    .run_with_slew(&ev, 15e-12)
                    .expect("cold run");
                    assert_bodies_identical(
                        report,
                        &cold,
                        &format!(
                            "seed {seed:#x} round {round} corner {} @ {threads} threads ({desc})",
                            cr.corners[i]
                        ),
                    );
                }
            }
        }
    }
}

/// A slew edit between sweeps re-seeds every corner and still matches
/// cold runs (the QWM evaluator is slew-sensitive, so this exercises
/// the re-seed path end to end).
#[test]
fn slew_edits_reseed_every_corner() {
    let tech = Technology::cmosp35();
    let corners = parse_corner_list("ss,ff").expect("corners");
    let models = CornerModels::analytic(&tech, &corners);
    let ev = QwmEvaluator::default();
    let nl = inverter_chain(&tech, 6, 10e-15);
    let mut engine =
        StaEngine::new(nl.clone(), models.set(0), TransitionKind::Fall).expect("engine");
    engine.set_input_slew(20e-12).expect("slew");
    let runs = runs_for(&models, &ev);
    let _ = engine.run_incremental_corners(&runs).expect("seed sweep");
    for (round, slew) in [35e-12, 8e-12, 35e-12].into_iter().enumerate() {
        engine.set_input_slew(slew).expect("slew edit");
        let runs = runs_for(&models, &ev);
        let cr = engine.run_incremental_corners(&runs).expect("warm sweep");
        for (i, report) in cr.reports.iter().enumerate() {
            let cold = StaEngine::new(nl.clone(), models.set(i), TransitionKind::Fall)
                .expect("cold engine")
                .run_with_slew(&ev, slew)
                .expect("cold run");
            assert_bodies_identical(
                report,
                &cold,
                &format!("round {round} corner {} slew {slew:e}", cr.corners[i]),
            );
        }
    }
}

/// Monte Carlo corner lists expand deterministically end to end: the
/// same `mc:<seed>:<n>` spec gives byte-identical sweeps, a different
/// seed does not.
#[test]
fn monte_carlo_sweeps_are_a_pure_function_of_the_spec() {
    let tech = Technology::cmosp35();
    let ev = ElmoreEvaluator;
    let nl = inverter_chain(&tech, 4, 10e-15);
    let sweep = |spec: &str| -> Vec<String> {
        let corners = parse_corner_list(spec).expect("corners");
        let models = CornerModels::analytic(&tech, &corners);
        let engine =
            StaEngine::new(nl.clone(), models.set(0), TransitionKind::Fall).expect("engine");
        let runs = runs_for(&models, &ev);
        let cr = engine.run_corners(&runs, 12e-12).expect("sweep");
        cr.reports
            .iter()
            .map(|r| golden_report(r, engine.netlist()))
            .collect()
    };
    let a = sweep("mc:42:4");
    let b = sweep("mc:42:4");
    assert_eq!(a, b, "same spec, same bytes");
    let c = sweep("mc:43:4");
    assert_ne!(a, c, "a different seed must sample different corners");
    // The nominal corner embedded in a mixed list stays bitwise the
    // plain single-corner run.
    let corners = parse_corner_list("tt,mc:42:2").expect("corners");
    let models = CornerModels::analytic(&tech, &corners);
    let engine = StaEngine::new(nl.clone(), models.set(0), TransitionKind::Fall).expect("engine");
    let runs = runs_for(&models, &ev);
    let cr = engine.run_corners(&runs, 12e-12).expect("sweep");
    let solo = StaEngine::new(nl.clone(), models.set(0), TransitionKind::Fall)
        .expect("engine")
        .run_with_slew(&ev, 12e-12)
        .expect("run");
    assert_eq!(
        golden_report(&cr.reports[0], engine.netlist()),
        golden_report(&solo, engine.netlist()),
        "tt inside a sweep is the identity corner"
    );
    let _ = Corner::tt();
}
