//! End-to-end tests for the `qwm-serve` timing-query server.
//!
//! Contracts under test:
//!
//! * **Determinism** — the same command script over 1, 4 and 8
//!   simultaneous connections yields byte-identical `run` payloads,
//!   which also match an in-process cold [`StaEngine`] reference.
//! * **Warm = cold** — a session surviving 100 sequential `edit` +
//!   `run` round-trips reports bitwise-identically to a fresh engine
//!   re-timed from scratch after each edit.
//! * **Isolation** — a fault-injected session degrades down the
//!   fallback ladder without perturbing a clean session's reports.
//! * **Admission control** — heavy requests beyond `max_inflight` get
//!   `429` and succeed once the server drains its backlog.
//! * **Lifecycle** — idle sessions are evicted after the ttl; malformed
//!   decks/commands come back as `4xx` with locations, never a hang.
//!
//! The server's fault plan and obs state are process-global, so every
//! test serializes on one mutex and installs/clears what it needs.

use qwm::circuit::parser::parse_netlist;
use qwm::circuit::waveform::TransitionKind;
use qwm::fault::{FaultKind, FaultPlan};
use qwm::server::{shared_models, Client, Server, ServerConfig, ServerHandle};
use qwm::sta::engine::StaEngine;
use qwm::sta::evaluator::QwmEvaluator;
use qwm::sta::report::golden_report;
use std::sync::Mutex;
use std::time::Duration;

static LOCK: Mutex<()> = Mutex::new(());

fn locked() -> std::sync::MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

const DECK: &str = include_str!("../testdata/path4.sp");

fn start(cfg: ServerConfig) -> (ServerHandle, std::thread::JoinHandle<std::io::Result<()>>) {
    Server::spawn(cfg).expect("spawn server")
}

fn stop(handle: ServerHandle, join: std::thread::JoinHandle<std::io::Result<()>>) {
    handle.shutdown();
    join.join().expect("server thread").expect("clean drain");
}

fn connect(handle: &ServerHandle) -> Client {
    let mut c = Client::connect(handle.addr()).expect("connect");
    c.set_timeout(Some(Duration::from_secs(60)))
        .expect("timeout");
    c
}

/// Golden-report body without the `evaluations`/`waveform_failures`
/// header: those count work done, which legitimately differs between
/// incremental and cold runs while the timing body must not.
fn timing_body(report: &str) -> String {
    report
        .lines()
        .filter(|l| !l.starts_with("evaluations ") && !l.starts_with("waveform_failures "))
        .collect::<Vec<_>>()
        .join("\n")
}

/// The scripted session every determinism connection replays.
fn scripted_session(client: &mut Client, sid: &str) -> Vec<String> {
    let mut payloads = Vec::new();
    assert!(client.load(sid, DECK).unwrap().ok(), "load");
    let r = client.send(&format!("run {sid} qwm slew_ps=20")).unwrap();
    assert!(r.ok(), "first run: {} {}", r.status, r.head);
    payloads.push(r.body().to_string());
    let e = client.edit(sid, "resize MN2 1.2u\nload n2 20f\n").unwrap();
    assert_eq!(e.status, 200, "edit: {}", e.head);
    let r = client.send(&format!("run {sid} qwm slew_ps=20")).unwrap();
    assert!(r.ok(), "edited run: {} {}", r.status, r.head);
    payloads.push(r.body().to_string());
    payloads
}

#[test]
fn concurrent_clients_get_byte_identical_reports() {
    let _g = locked();
    qwm::fault::clear();
    let (handle, join) = start(ServerConfig {
        max_inflight: 8,
        ..ServerConfig::default()
    });

    // In-process cold references for both script steps.
    let models = shared_models().expect("models");
    let netlist = parse_netlist(DECK).expect("deck");
    let cold_before = {
        let engine = StaEngine::new(netlist.clone(), models, TransitionKind::Fall).unwrap();
        let report = engine
            .run_with_slew(&QwmEvaluator::default(), 20e-12)
            .unwrap();
        golden_report(&report, engine.netlist())
    };
    let cold_after = {
        let mut engine = StaEngine::new(netlist, models, TransitionKind::Fall).unwrap();
        let edits = qwm::sta::parse_edit_script("resize MN2 1.2u\nload n2 20f\n", engine.netlist())
            .unwrap();
        engine.apply_edits(&edits).unwrap();
        let report = engine
            .run_with_slew(&QwmEvaluator::default(), 20e-12)
            .unwrap();
        golden_report(&report, engine.netlist())
    };

    let mut reference: Option<Vec<String>> = None;
    for conns in [1usize, 4, 8] {
        let results: Vec<Vec<String>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..conns)
                .map(|i| {
                    let handle = &handle;
                    scope.spawn(move || {
                        let mut client = connect(handle);
                        scripted_session(&mut client, &format!("det-{conns}-{i}"))
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for r in &results {
            match &reference {
                None => reference = Some(r.clone()),
                Some(first) => assert_eq!(r, first, "{conns} connections: payloads diverged"),
            }
        }
    }

    let reference = reference.expect("at least one session ran");
    assert_eq!(
        timing_body(&reference[0]),
        timing_body(&cold_before),
        "server run vs cold engine, pre-edit"
    );
    assert_eq!(
        timing_body(&reference[1]),
        timing_body(&cold_after),
        "server run vs cold engine, post-edit"
    );
    stop(handle, join);
}

#[test]
fn hundred_edit_session_matches_cold_rerun_after_every_edit() {
    let _g = locked();
    qwm::fault::clear();
    let (handle, join) = start(ServerConfig::default());
    let mut client = connect(&handle);
    assert!(client.load("marathon", DECK).unwrap().ok());

    let models = shared_models().expect("models");
    let base = parse_netlist(DECK).expect("deck");
    let mut cumulative = Vec::new();
    for i in 0..100u32 {
        // Deterministic edit stream cycling over resizes and loads.
        let script = match i % 4 {
            0 => format!("resize MN2 {:.4}e-6", 0.5 + 0.01 * f64::from(i)),
            1 => format!("load n2 {:.4}e-15", 20.0 + f64::from(i)),
            2 => format!("resize MP3a {:.4}e-6", 1.0 + 0.005 * f64::from(i)),
            _ => format!("load n3 {:.4}e-15", 5.0 + 0.5 * f64::from(i)),
        };
        let e = client.edit("marathon", &script).unwrap();
        assert_eq!(e.status, 200, "edit {i}: {}", e.head);
        let r = client.send("run marathon qwm slew_ps=20").unwrap();
        assert_eq!(r.status, 200, "run {i}: {}", r.head);

        let mut cold = StaEngine::new(base.clone(), models, TransitionKind::Fall).unwrap();
        cumulative.extend(qwm::sta::parse_edit_script(&script, cold.netlist()).unwrap());
        cold.apply_edits(&cumulative).unwrap();
        let cold_report = cold
            .run_with_slew(&QwmEvaluator::default(), 20e-12)
            .unwrap();
        assert_eq!(
            timing_body(r.body()),
            timing_body(&golden_report(&cold_report, cold.netlist())),
            "edit {i}: warm incremental diverged from cold rerun"
        );
    }
    let stats = client.send("stats marathon").unwrap();
    assert!(stats.ok());
    assert!(stats.head.contains("runs=100"), "stats: {}", stats.head);
    stop(handle, join);
}

#[test]
fn faulted_session_degrades_without_poisoning_clean_sessions() {
    let _g = locked();
    qwm::fault::clear();
    let (handle, join) = start(ServerConfig {
        max_inflight: 2,
        ..ServerConfig::default()
    });
    let mut chaotic = connect(&handle);
    let mut clean = connect(&handle);
    assert!(clean.load("clean", DECK).unwrap().ok());

    // Clean elmore baseline before any faults exist.
    let clean_elmore = clean.send("run clean elmore slew_ps=20").unwrap();
    assert!(clean_elmore.ok());

    // Chaos: every first QWM attempt fails; the ladder's retry rung
    // (site `retry/qwm.region`) still works. The chaotic sessions are
    // loaded *after* the plan lands so their arc caches are cold and
    // the fault site is actually exercised.
    qwm::fault::install(FaultPlan::new(42).inject("qwm.region", FaultKind::NoConvergence));
    assert!(chaotic.load("chaotic", DECK).unwrap().ok());
    assert!(chaotic.load("chaotic-bare", DECK).unwrap().ok());

    let degraded = chaotic.send("run chaotic fallback slew_ps=20").unwrap();
    assert_eq!(degraded.status, 200, "fallback absorbs the fault");
    assert!(
        degraded.body().contains("degradations"),
        "degradation provenance is reported:\n{}",
        degraded.body()
    );
    // A plain qwm run in the faulted world fails loudly as a 500...
    let failed = chaotic.send("run chaotic-bare qwm slew_ps=20").unwrap();
    assert_eq!(failed.status, 500, "unshielded qwm fails: {}", failed.head);

    // ...but the clean session's elmore runs are byte-identical to the
    // pre-fault baseline, and the chaotic sessions themselves keep
    // serving (and recover fully) once the plan is cleared.
    let still_clean = clean.send("run clean elmore slew_ps=20").unwrap();
    assert!(still_clean.ok());
    assert_eq!(
        timing_body(still_clean.body()),
        timing_body(clean_elmore.body()),
        "fault leaked into a clean session"
    );
    qwm::fault::clear();
    let recovered = chaotic.send("run chaotic-bare qwm slew_ps=20").unwrap();
    assert_eq!(recovered.status, 200, "session survives its own faults");
    let clean_qwm = clean.send("run clean qwm slew_ps=20").unwrap();
    assert!(clean_qwm.ok());
    assert_eq!(
        timing_body(recovered.body()),
        timing_body(clean_qwm.body()),
        "recovered session matches a never-faulted one"
    );
    stop(handle, join);
}

#[test]
fn admission_control_rejects_excess_and_recovers() {
    let _g = locked();
    qwm::fault::clear();
    let (handle, join) = start(ServerConfig {
        max_inflight: 1,
        ..ServerConfig::default()
    });

    // Occupy the single slot with a slow request on its own connection.
    let blocker = std::thread::scope(|scope| {
        let h = &handle;
        let blocker = scope.spawn(move || {
            let mut c = connect(h);
            c.send("sleep 600").unwrap()
        });
        // Poll from a second connection until the 429 is observed.
        let mut c = connect(&handle);
        let mut saw_429 = None;
        for _ in 0..200 {
            let r = c.send("sleep 1").unwrap();
            match r.status {
                429 => {
                    saw_429 = Some(r);
                    break;
                }
                200 => std::thread::sleep(Duration::from_millis(5)),
                other => panic!("unexpected status {other}: {}", r.head),
            }
        }
        let busy = saw_429.expect("a 429 while the slot is occupied");
        assert!(
            busy.head.contains("inflight=1 max=1"),
            "429 reports load: {}",
            busy.head
        );
        // Light commands are never turned away.
        assert!(c.send("ping").unwrap().ok());
        blocker.join().unwrap()
    });
    assert!(blocker.ok(), "blocked request completed: {}", blocker.head);

    // Slot free again: heavy requests succeed.
    let mut c = connect(&handle);
    assert!(c.send("sleep 1").unwrap().ok());
    stop(handle, join);
}

#[test]
fn idle_sessions_are_evicted_after_the_ttl() {
    let _g = locked();
    qwm::fault::clear();
    let (handle, join) = start(ServerConfig {
        session_ttl: Some(Duration::from_millis(100)),
        ..ServerConfig::default()
    });
    let mut c = connect(&handle);
    assert!(c.load("ephemeral", DECK).unwrap().ok());
    assert!(c.send("run ephemeral qwm slew_ps=20").unwrap().ok());
    assert_eq!(handle.session_count(), 1);
    std::thread::sleep(Duration::from_millis(400));
    let r = c.send("report ephemeral").unwrap();
    assert_eq!(r.status, 404, "evicted session: {}", r.head);
    assert_eq!(handle.session_count(), 0);
    stop(handle, join);
}

#[test]
fn protocol_and_parse_errors_are_structured() {
    let _g = locked();
    qwm::fault::clear();
    let (handle, join) = start(ServerConfig::default());
    let mut c = connect(&handle);

    // Malformed deck: the parser's line/column survives to the wire.
    let bad_deck = "MN1 out in 0\n.end\n";
    let r = c.load("bad", bad_deck).unwrap();
    assert_eq!(r.status, 400);
    assert!(
        r.head.contains("line 1") && r.head.contains("col"),
        "deck errors carry locations: {}",
        r.head
    );

    // Unknown commands, bad session ids, missing sessions.
    assert_eq!(c.send("frobnicate").unwrap().status, 400);
    assert_eq!(c.send("run nosuch qwm").unwrap().status, 404);
    assert_eq!(c.send("report nosuch").unwrap().status, 404);
    assert_eq!(c.send("run bad/sid qwm").unwrap().status, 400);

    // Bad edit scripts name the offending line; the session stays usable.
    assert!(c.load("ok", DECK).unwrap().ok());
    let r = c.edit("ok", "resize NOPE 1u").unwrap();
    assert_eq!(r.status, 400);
    assert!(r.head.contains("line 1"), "edit errors: {}", r.head);
    assert!(c.send("run ok qwm slew_ps=20").unwrap().ok());

    // A report exists only after a run.
    assert!(c.load("fresh", DECK).unwrap().ok());
    assert_eq!(c.send("report fresh").unwrap().status, 404);

    // Budget introspection round-trips.
    let b = c.send("budget ok retries=3 wall_ms=250").unwrap();
    assert!(b.ok());
    assert!(
        b.head.contains("retries=3") && b.head.contains("wall_ms=250"),
        "budget echo: {}",
        b.head
    );
    stop(handle, join);
}

#[test]
fn traced_run_renders_full_span_tree_and_profile() {
    let _g = locked();
    qwm::fault::clear();
    let (handle, join) = start(ServerConfig::default());
    let mut c = connect(&handle);
    assert!(c.load("tr", DECK).unwrap().ok());

    // No trace before any traced run.
    assert_eq!(c.send("trace tr last").unwrap().status, 404);

    let on = c.send("trace tr on").unwrap();
    assert!(on.ok() && on.head.contains("tracing=on"), "{}", on.head);
    let r = c.send("run tr qwm slew_ps=20").unwrap();
    assert!(r.ok(), "traced run: {} {}", r.status, r.head);
    assert!(
        r.head.contains("wait_ns=") && r.head.contains("solve_ns="),
        "run head exposes the queue-wait/solve split: {}",
        r.head
    );

    // Text rendering: the whole tree from the server root down to
    // per-arc leaves, with stages grouped under level headers.
    let last = c.send("trace tr last").unwrap();
    assert!(last.ok(), "{} {}", last.status, last.head);
    let tree = last.body();
    for needle in [
        "server.run",
        "server.wait.admission",
        "sta.run_incremental",
        "level ",
        "stage ",
        "rung=",
    ] {
        assert!(
            tree.contains(needle),
            "trace text missing {needle:?}:\n{tree}"
        );
    }

    // JSON rendering: every line is a standalone JSON object.
    let json = c.send("trace tr last json").unwrap();
    assert!(json.ok());
    let lines = qwm::obs::report::validate_json_lines(json.body()).expect("trace json lines");
    assert!(lines > 3, "expected a real tree, got {lines} lines");

    // The traced run fed the hot-arc profile.
    let prof = c.send("profile top 5").unwrap();
    assert!(prof.ok());
    assert!(
        prof.body().contains("hot arcs by total solve time"),
        "profile header:\n{}",
        prof.body()
    );

    let off = c.send("trace tr off").unwrap();
    assert!(off.ok() && off.head.contains("tracing=off"), "{}", off.head);
    stop(handle, join);
}

/// The `corner <name>` body inside a corner-report payload.
fn corner_section(body: &str, name: &str) -> String {
    let header = format!("corner {name}");
    body.lines()
        .skip_while(|l| *l != header)
        .skip(1)
        .take_while(|l| !l.starts_with("corner "))
        .collect::<Vec<_>>()
        .join("\n")
}

/// Acceptance matrix for `run ... corners=`: a batched sweep over a
/// warm session is byte-identical, corner by corner, to independent
/// single-corner sessions replaying the same load + edit script — at
/// 1, 4 and 8 engine threads — and the reply head names the worst
/// corner.
#[test]
fn batched_corner_runs_match_single_corner_sessions() {
    let _g = locked();
    qwm::fault::clear();
    for threads in [1usize, 4, 8] {
        let (handle, join) = start(ServerConfig {
            engine_threads: threads,
            ..ServerConfig::default()
        });
        let mut c = connect(&handle);
        let corners = ["ss", "tt", "ff"];
        assert!(c.load("multi", DECK).unwrap().ok());
        for name in corners {
            assert!(c.load(&format!("solo-{name}"), DECK).unwrap().ok());
        }
        let script = "resize MN2 1.2u\nload n2 20f\n";
        for round in 0..2 {
            if round == 1 {
                assert_eq!(c.edit("multi", script).unwrap().status, 200);
                for name in corners {
                    assert_eq!(c.edit(&format!("solo-{name}"), script).unwrap().status, 200);
                }
            }
            let multi = c.send("run multi qwm corners=ss,tt,ff slew_ps=20").unwrap();
            assert!(multi.ok(), "batched run: {} {}", multi.status, multi.head);
            assert!(
                multi.head.contains("corners=3 worst_corner=ss"),
                "head names the sweep and worst corner: {}",
                multi.head
            );
            assert!(
                multi
                    .body()
                    .starts_with("corners ss,tt,ff\nworst_corner ss "),
                "payload leads with provenance:\n{}",
                multi.body()
            );
            assert!(
                multi.body().contains("net_worst n4 ss "),
                "per-net worst-corner provenance:\n{}",
                multi.body()
            );
            for name in corners {
                let solo = c
                    .send(&format!("run solo-{name} qwm corners={name} slew_ps=20"))
                    .unwrap();
                assert!(solo.ok(), "solo {name}: {} {}", solo.status, solo.head);
                assert_eq!(
                    corner_section(multi.body(), name),
                    corner_section(solo.body(), name),
                    "@{threads} threads round {round}: batched {name} differs \
                     from its single-corner session"
                );
            }
        }
        // Corner and classic runs interleave on one warm session.
        let classic = c.send("run multi qwm slew_ps=20").unwrap();
        assert!(classic.ok(), "classic after corners: {}", classic.head);
        assert!(!classic.head.contains("corners="));
        stop(handle, join);
    }
}

/// Malformed corner lists come back as structured 400s naming the
/// offending item; traced corner runs expose per-corner arc records;
/// `metrics prom` exports the `sta.corner.*` counter family.
#[test]
fn corner_protocol_errors_traces_and_metrics() {
    let _g = locked();
    qwm::fault::clear();
    let (handle, join) = start(ServerConfig::default());
    let mut c = connect(&handle);
    assert!(c.load("cm", DECK).unwrap().ok());

    for (bad, needle) in [
        ("run cm corners=", "empty corner name"),
        ("run cm corners=tt,weird", "unknown corner"),
        ("run cm corners=tt,tt", "duplicate corner"),
        ("run cm corners=mc:7:0", "out of range"),
        ("run cm corners=mc:x:3", "Monte Carlo seed"),
    ] {
        let r = c.send(bad).unwrap();
        assert_eq!(r.status, 400, "{bad:?}: {}", r.head);
        assert!(
            r.head.contains(needle),
            "{bad:?} names the offence: {}",
            r.head
        );
    }
    // The session is untouched by the rejects.
    assert!(c.send("run cm qwm corners=ss,tt slew_ps=20").unwrap().ok());

    // Traced corner runs tag every arc record with its corner. Dirty
    // the warm session first so the sweep actually touches arcs (a
    // no-op incremental run records no arc work).
    assert!(c.send("trace cm on").unwrap().ok());
    assert_eq!(c.edit("cm", "resize MN2 1.3u").unwrap().status, 200);
    let r = c.send("run cm qwm corners=ss,tt slew_ps=20").unwrap();
    assert!(r.ok(), "traced corner run: {}", r.head);
    let tree = c.send("trace cm last").unwrap();
    assert!(tree.ok());
    for needle in ["sta.run_incremental_corners", " corner=ss", " corner=tt"] {
        assert!(
            tree.body().contains(needle),
            "trace missing {needle:?}:\n{}",
            tree.body()
        );
    }
    let json = c.send("trace cm last json").unwrap();
    assert!(json.ok());
    qwm::obs::report::validate_json_lines(json.body()).expect("trace json");
    assert!(
        json.body().contains("\"corner\":\"ss\""),
        "json arc records carry the corner:\n{}",
        json.body()
    );

    // The corner counter family reaches the Prometheus exposition.
    let prom = c.send("metrics prom").unwrap();
    assert!(prom.ok());
    qwm::obs::prom::check_exposition(prom.body()).expect("prom exposition");
    for needle in [
        "qwm_sta_corner_incremental_runs_total",
        "qwm_sta_corner_full_runs_total",
        "qwm_sta_corner_evaluations_total",
    ] {
        assert!(
            prom.body().contains(needle),
            "prom missing {needle}:\n{}",
            prom.body()
        );
    }
    stop(handle, join);
}

#[test]
fn metrics_and_stats_surfaces_are_well_formed() {
    let _g = locked();
    qwm::fault::clear();
    let (handle, join) = start(ServerConfig::default());
    let mut c = connect(&handle);
    assert!(c.load("m", DECK).unwrap().ok());
    assert!(c.send("run m qwm slew_ps=20").unwrap().ok());

    // stats reflects the session's run count.
    let stats = c.send("stats m").unwrap();
    assert!(stats.ok());
    assert!(stats.head.contains("runs=1"), "stats: {}", stats.head);

    // Plain metrics: every payload line is a standalone JSON object
    // and the renamed request counters are present.
    let m = c.send("metrics").unwrap();
    assert!(m.ok());
    let lines = qwm::obs::report::validate_json_lines(m.body()).expect("metrics json");
    assert!(lines > 0, "metrics payload is non-empty");
    assert!(
        m.body().contains("server.request.received"),
        "renamed server counters exported:\n{}",
        m.body()
    );

    // Prometheus exposition round-trips the format checker.
    let prom = c.send("metrics prom").unwrap();
    assert!(prom.ok());
    let text = prom.body();
    qwm::obs::prom::check_exposition(text).expect("prom exposition");
    assert!(
        text.contains("qwm_server_request_received_total"),
        "prom counter naming:\n{text}"
    );

    // Bad arguments are rejected, not silently defaulted.
    assert_eq!(c.send("metrics xml").unwrap().status, 400);
    assert_eq!(c.send("profile bottom").unwrap().status, 400);
    assert_eq!(c.send("trace m maybe").unwrap().status, 400);
    assert_eq!(c.send("trace nosuch on").unwrap().status, 404);
    stop(handle, join);
}
