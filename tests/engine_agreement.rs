//! Cross-engine integration tests: QWM must track the SPICE-class
//! baseline on every circuit family of the paper's evaluation, in both
//! transition directions, under both device-model flavors.

use qwm::circuit::cells;
use qwm::circuit::stage::LogicStage;
use qwm::circuit::waveform::{TransitionKind, Waveform};
use qwm::core::evaluate::{evaluate, QwmConfig};
use qwm::device::model::ModelSet;
use qwm::device::{analytic_models, tabular_models, Technology};
use qwm::num::rng::Rng64;
use qwm::spice::engine::{initial_uniform, simulate, TransientConfig};

fn fall_delay_pair(
    tech: &Technology,
    qwm_models: &ModelSet,
    spice_models: &ModelSet,
    stage: &LogicStage,
) -> (f64, f64) {
    fall_delay_pair_with(tech, qwm_models, spice_models, stage, &QwmConfig::default())
}

fn fall_delay_pair_with(
    tech: &Technology,
    qwm_models: &ModelSet,
    spice_models: &ModelSet,
    stage: &LogicStage,
    config: &QwmConfig,
) -> (f64, f64) {
    let inputs: Vec<Waveform> = (0..stage.inputs().len())
        .map(|_| Waveform::step(0.0, 0.0, tech.vdd))
        .collect();
    let init = initial_uniform(stage, spice_models, tech.vdd);
    let out = stage.node_by_name("out").unwrap();
    let q = evaluate(
        stage,
        qwm_models,
        &inputs,
        &init,
        out,
        TransitionKind::Fall,
        config,
    )
    .expect("qwm evaluation");
    let dq = q.delay_50(tech.vdd, 0.0).expect("qwm delay");
    let s = simulate(
        stage,
        spice_models,
        &inputs,
        &init,
        &TransientConfig::hspice_1ps((3.0 * dq).max(300e-12)),
    )
    .expect("spice transient");
    let ds = s
        .waveform(out)
        .unwrap()
        .crossing(tech.vdd / 2.0, false)
        .expect("spice falls");
    (dq, ds)
}

#[test]
fn qwm_tracks_spice_on_every_gate() {
    let tech = Technology::cmosp35();
    let spice_models = analytic_models(&tech);
    let qwm_models = tabular_models(&tech).unwrap();
    let gates = vec![
        cells::inverter(&tech, cells::DEFAULT_LOAD).unwrap(),
        cells::nand(&tech, 2, cells::DEFAULT_LOAD).unwrap(),
        cells::nand(&tech, 3, cells::DEFAULT_LOAD).unwrap(),
        cells::nand(&tech, 4, cells::DEFAULT_LOAD).unwrap(),
    ];
    for g in &gates {
        let (dq, ds) = fall_delay_pair(&tech, &qwm_models, &spice_models, g);
        let err = (dq - ds).abs() / ds;
        assert!(err < 0.05, "{}: qwm {dq:.3e} spice {ds:.3e}", g.name());
    }
}

#[test]
fn qwm_tracks_spice_on_the_paper_6_stack() {
    let tech = Technology::cmosp35();
    let spice_models = analytic_models(&tech);
    let qwm_models = tabular_models(&tech).unwrap();
    let stack = cells::manchester_longest_path(&tech, 4, cells::DEFAULT_LOAD).unwrap();
    let (dq, ds) = fall_delay_pair(&tech, &qwm_models, &spice_models, &stack);
    let err = (dq - ds).abs() / ds;
    assert!(err < 0.04, "6-stack: qwm {dq:.3e} spice {ds:.3e}");
}

#[test]
fn rise_and_fall_are_both_supported() {
    let tech = Technology::cmosp35();
    let models = analytic_models(&tech);
    let stack = cells::pmos_stack(&tech, &[3e-6; 3], cells::DEFAULT_LOAD).unwrap();
    let inputs: Vec<Waveform> = (0..3).map(|_| Waveform::step(0.0, tech.vdd, 0.0)).collect();
    let init = initial_uniform(&stack, &models, 0.0);
    let out = stack.node_by_name("out").unwrap();
    let q = evaluate(
        &stack,
        &models,
        &inputs,
        &init,
        out,
        TransitionKind::Rise,
        &QwmConfig::default(),
    )
    .unwrap();
    let dq = q.delay_50(tech.vdd, 0.0).unwrap();
    let s = simulate(
        &stack,
        &models,
        &inputs,
        &init,
        &TransientConfig::hspice_1ps((3.0 * dq).max(300e-12)),
    )
    .unwrap();
    let ds = s
        .waveform(out)
        .unwrap()
        .crossing(tech.vdd / 2.0, true)
        .unwrap();
    assert!(
        (dq - ds).abs() / ds < 0.05,
        "rise: qwm {dq:.3e} spice {ds:.3e}"
    );
}

#[test]
fn tabular_and_analytic_models_agree_through_qwm() {
    let tech = Technology::cmosp35();
    let analytic = analytic_models(&tech);
    let tabular = tabular_models(&tech).unwrap();
    let stack = cells::nmos_stack(&tech, &[1.5e-6; 5], cells::DEFAULT_LOAD).unwrap();
    let (d_tab, _) = fall_delay_pair(&tech, &tabular, &analytic, &stack);
    let (d_ana, _) = fall_delay_pair(&tech, &analytic, &analytic, &stack);
    assert!(
        (d_tab - d_ana).abs() / d_ana < 0.03,
        "tabular {d_tab:.3e} vs analytic {d_ana:.3e}"
    );
}

#[test]
fn qwm_waveforms_track_spice_pointwise() {
    // Not just the delay: the sampled waveform itself stays close.
    let tech = Technology::cmosp35();
    let spice_models = analytic_models(&tech);
    let stack = cells::nmos_stack(&tech, &[2e-6; 4], cells::DEFAULT_LOAD).unwrap();
    let inputs: Vec<Waveform> = (0..4).map(|_| Waveform::step(0.0, 0.0, tech.vdd)).collect();
    let init = initial_uniform(&stack, &spice_models, tech.vdd);
    let out = stack.node_by_name("out").unwrap();
    let q = evaluate(
        &stack,
        &spice_models,
        &inputs,
        &init,
        out,
        TransitionKind::Fall,
        &QwmConfig::default(),
    )
    .unwrap();
    let span = q.output_waveform().breakpoints().last().unwrap().0;
    let s = simulate(
        &stack,
        &spice_models,
        &inputs,
        &init,
        &TransientConfig::hspice_1ps(span),
    )
    .unwrap();
    let sw = s.waveform(out).unwrap();
    let qw = q.output_waveform();
    let mut max_err: f64 = 0.0;
    for i in 0..=100 {
        let t = span * i as f64 / 100.0;
        max_err = max_err.max((qw.voltage(t) - sw.value(t)).abs());
    }
    assert!(max_err < 0.35, "max waveform deviation {max_err} V");
}

/// Random stacks (the Table II population): the delay error against
/// the baseline stays within the paper's worst-case band.
#[test]
fn random_stack_delay_error_is_bounded() {
    let tech = Technology::cmosp35();
    let spice_models = analytic_models(&tech);
    let mut rng = Rng64::seed_from_u64(0x57ac4);
    for _ in 0..12 {
        let k = rng.range_usize(2, 7);
        let widths: Vec<f64> = (0..k).map(|_| rng.range(1.0, 4.0) * tech.w_min).collect();
        let load_ff = rng.range(5.0, 40.0);
        let stack = cells::nmos_stack(&tech, &widths, load_ff * 1e-15).unwrap();
        // Paper-faithful evaluator: in-population errors run ~1%, but
        // minimum-width stacks under heavy loads reach ~9% (the method's
        // genuine worst case).
        let (dq, ds) = fall_delay_pair(&tech, &spice_models, &spice_models, &stack);
        let err = (dq - ds).abs() / ds;
        assert!(
            err < 0.10,
            "plain: widths {widths:?} qwm {dq:.3e} spice {ds:.3e} err {err:.3}"
        );
        // The refined evaluator bounds those worst cases much tighter.
        let (dq_r, _) = fall_delay_pair_with(
            &tech,
            &spice_models,
            &spice_models,
            &stack,
            &QwmConfig::refined(),
        );
        let err_r = (dq_r - ds).abs() / ds;
        assert!(
            err_r < 0.04,
            "refined: widths {widths:?} qwm {dq_r:.3e} spice {ds:.3e} err {err_r:.3}"
        );
    }
}

#[test]
fn staggered_input_arrivals() {
    // Inputs arriving at different times: the turn-on cascade is driven
    // by gate waveforms and node motion interleaved. QWM's gate-driven
    // critical points must land where SPICE puts them.
    let tech = Technology::cmosp35();
    let models = analytic_models(&tech);
    let stage = cells::nmos_stack(&tech, &[1.5e-6; 4], cells::DEFAULT_LOAD).unwrap();
    let out = stage.node_by_name("out").unwrap();
    // g1 at 0, g2 at 15 ps, g3 at 5 ps, g4 at 40 ps.
    let starts = [0.0, 15e-12, 5e-12, 40e-12];
    let inputs: Vec<Waveform> = starts
        .iter()
        .map(|&t0| Waveform::step(t0, 0.0, tech.vdd))
        .collect();
    let init = initial_uniform(&stage, &models, tech.vdd);
    let q = evaluate(
        &stage,
        &models,
        &inputs,
        &init,
        out,
        TransitionKind::Fall,
        &QwmConfig::default(),
    )
    .unwrap();
    let dq = q.delay_50(tech.vdd, 0.0).unwrap();
    let s = simulate(
        &stage,
        &models,
        &inputs,
        &init,
        &TransientConfig::hspice_1ps((3.0 * dq).max(400e-12)),
    )
    .unwrap();
    let ds = s
        .waveform(out)
        .unwrap()
        .crossing(tech.vdd / 2.0, false)
        .unwrap();
    assert!(
        (dq - ds).abs() / ds < 0.05,
        "staggered: qwm {dq:.3e} vs spice {ds:.3e}"
    );
    // The late g4 gate (40 ps) must appear among the committed events.
    assert!(
        q.critical_points
            .iter()
            .any(|c| (c.t - 40e-12).abs() < 2e-12 || (c.t - 41e-12).abs() < 2e-12),
        "g4's arrival bounds a region: {:?}",
        q.critical_points
    );
}

#[test]
fn slow_ramp_inputs() {
    // 80 ps input ramps: the region structure must follow the input
    // breakpoints and stay accurate.
    let tech = Technology::cmosp35();
    let models = analytic_models(&tech);
    let stage = cells::nand(&tech, 3, cells::DEFAULT_LOAD).unwrap();
    let out = stage.node_by_name("out").unwrap();
    let inputs: Vec<Waveform> = (0..3)
        .map(|_| Waveform::ramp(0.0, 80e-12, 0.0, tech.vdd))
        .collect();
    let init = initial_uniform(&stage, &models, tech.vdd);
    let q = evaluate(
        &stage,
        &models,
        &inputs,
        &init,
        out,
        TransitionKind::Fall,
        &QwmConfig::default(),
    )
    .unwrap();
    let dq = q.delay_50(tech.vdd, 0.0).unwrap();
    let s = simulate(
        &stage,
        &models,
        &inputs,
        &init,
        &TransientConfig::hspice_1ps((3.0 * dq).max(500e-12)),
    )
    .unwrap();
    let ds = s
        .waveform(out)
        .unwrap()
        .crossing(tech.vdd / 2.0, false)
        .unwrap();
    assert!(
        (dq - ds).abs() / ds < 0.06,
        "ramp: qwm {dq:.3e} vs spice {ds:.3e}"
    );
}

#[test]
fn qwm_holds_on_a_scaled_technology() {
    // Nothing is hard-wired to the 0.35 µm node: the full pipeline
    // (characterize → QWM vs SPICE) holds at 0.18 µm / 1.8 V too.
    let tech = Technology::cmos018();
    let spice_models = analytic_models(&tech);
    let qwm_models = tabular_models(&tech).unwrap();
    let stack = cells::nmos_stack(&tech, &[2.0 * tech.w_min; 5], 8e-15).unwrap();
    let (dq, ds) = fall_delay_pair(&tech, &qwm_models, &spice_models, &stack);
    let err = (dq - ds).abs() / ds;
    assert!(
        err < 0.05,
        "cmos018: qwm {dq:.3e} spice {ds:.3e} err {err:.3}"
    );
    // Lower supply, shorter channel: faster than the same stack at 3.3 V.
    let t35 = Technology::cmosp35();
    let m35 = analytic_models(&t35);
    let s35 = cells::nmos_stack(&t35, &[2.0 * t35.w_min; 5], 8e-15).unwrap();
    let (d35, _) = fall_delay_pair(&t35, &m35, &m35, &s35);
    assert!(dq < d35, "scaled node is faster: {dq:.3e} vs {d35:.3e}");
}
