//! Protocol robustness fuzzing for `qwm-serve`.
//!
//! A seeded generator throws hostile input at a live server — malformed
//! command lines, truncated length-prefixed bodies, oversized payload
//! declarations, overlong request lines, binary garbage, and garbage
//! interleaved with valid commands on one connection. The contract
//! under test (ISSUE 8 satellite 1): every input yields a structured
//! `4xx`/`5xx` status line or a clean connection close — never a panic,
//! a hang, or a wedged server — and a follow-up `ping` on a fresh
//! connection always comes back `200`.
//!
//! Everything runs through raw [`TcpStream`]s (not [`qwm::server::Client`])
//! so the test can violate the protocol in ways the client cannot.

use qwm::num::rng::Rng64;
use qwm::server::{Client, Server, ServerConfig, ServerHandle};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::Mutex;
use std::time::Duration;

/// Server obs/fault state is process-global; serialize with the other
/// server suites.
static LOCK: Mutex<()> = Mutex::new(());

fn locked() -> std::sync::MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Generous bound: any reply must arrive well inside this, and hitting
/// it fails the test (that is the "never a hang" clause).
const REPLY_DEADLINE: Duration = Duration::from_secs(20);

fn start() -> (ServerHandle, std::thread::JoinHandle<std::io::Result<()>>) {
    Server::spawn(ServerConfig {
        max_inflight: 2,
        ..ServerConfig::default()
    })
    .expect("spawn server")
}

fn stop(handle: ServerHandle, join: std::thread::JoinHandle<std::io::Result<()>>) {
    handle.shutdown();
    join.join().expect("server thread").expect("clean drain");
}

/// The liveness probe: a fresh connection's `ping` must answer `200`.
fn assert_ping_ok(handle: &ServerHandle, context: &str) {
    let mut c = Client::connect(handle.addr()).expect("connect for ping");
    c.set_timeout(Some(REPLY_DEADLINE)).expect("timeout");
    let r = c.send("ping").expect("ping round-trip");
    assert_eq!(
        r.status, 200,
        "ping after {context}: {} {}",
        r.status, r.head
    );
}

/// One raw exchange: write `bytes`, optionally half-close the write
/// side, then read one status line. Returns `None` on clean EOF.
/// Panics (fails the test) if the server neither replies nor closes
/// within the deadline — the definition of a hang/wedge here.
fn raw_exchange(
    handle: &ServerHandle,
    bytes: &[u8],
    half_close: bool,
    context: &str,
) -> Option<String> {
    let stream = TcpStream::connect(handle.addr()).expect("connect");
    stream
        .set_read_timeout(Some(REPLY_DEADLINE))
        .expect("read timeout");
    stream
        .set_write_timeout(Some(REPLY_DEADLINE))
        .expect("write timeout");
    let mut writer = stream.try_clone().expect("clone stream");
    // The server may have already replied and closed mid-write (e.g.
    // overlong lines); a broken pipe here is a legal server response,
    // not a test failure.
    let _ = writer.write_all(bytes);
    let _ = writer.flush();
    if half_close {
        let _ = stream.shutdown(std::net::Shutdown::Write);
    }
    let mut line = String::new();
    match BufReader::new(&stream).read_line(&mut line) {
        Ok(0) => None,
        Ok(_) => Some(line.trim_end().to_string()),
        Err(e) => panic!("{context}: no reply and no close within deadline: {e}"),
    }
}

/// Asserts the reply (if any) is a structured non-2xx status line.
fn assert_structured_error(reply: &Option<String>, context: &str) {
    if let Some(line) = reply {
        let code: u16 = line
            .split_whitespace()
            .next()
            .and_then(|t| t.parse().ok())
            .unwrap_or_else(|| panic!("{context}: unstructured reply {line:?}"));
        assert!(
            (400..600).contains(&code),
            "{context}: expected 4xx/5xx, got {line:?}"
        );
    }
    // None = clean close: acceptable for inputs that die mid-frame.
}

/// Seeded garbage line: printable tokens, control bytes, or raw binary.
fn garbage_line(rng: &mut Rng64) -> Vec<u8> {
    let len = rng.range_usize(1, 200);
    let mut out = Vec::with_capacity(len + 1);
    for _ in 0..len {
        let b = match rng.range_usize(0, 4) {
            0 => b' ' + (rng.next_u64() % 94) as u8, // printable
            1 => (rng.next_u64() % 32) as u8,        // control chars
            _ => (rng.next_u64() % 256) as u8,       // raw binary
        };
        // Keep the line a line: the newline terminator comes last.
        out.push(if b == b'\n' { b'\r' } else { b });
    }
    out.push(b'\n');
    out
}

/// Malformed-but-plausible command lines the parser must reject.
fn malformed_command(rng: &mut Rng64) -> String {
    const TEMPLATES: &[&str] = &[
        "load",
        "load sid",
        "load sid notanumber\n",
        "load bad/sid 10\n0123456789",
        "load sid -5\n",
        "run\n",
        "run sid warp\n",
        "run sid qwm slew_ps=NaN\n",
        "run sid qwm slew_ps=-3\n",
        "run sid qwm deadline_ms=oops\n",
        "run sid qwm corners=xx\n",
        "run sid qwm corners=mc:7:0\n",
        "report\n",
        "report a b c\n",
        "stats\n",
        "budget sid retries=-1\n",
        "trace sid maybe\n",
        "profile bottom\n",
        "metrics prom xml\n",
        "sleep forever\n",
        "close\n",
        "frobnicate sid 12\n",
        "\u{1}\u{2}\u{3} run\n",
        "run sid qwm extra=fields everywhere\n",
    ];
    let mut line = TEMPLATES[rng.range_usize(0, TEMPLATES.len())].to_string();
    if !line.ends_with('\n') {
        line.push('\n');
    }
    line
}

#[test]
fn fuzz_garbage_and_malformed_commands_get_structured_errors() {
    let _guard = locked();
    let (handle, join) = start();
    let mut rng = Rng64::stream(0xF0CC_ED11, &[1]);
    for i in 0..60 {
        let (bytes, context) = if i % 2 == 0 {
            (garbage_line(&mut rng), format!("garbage #{i}"))
        } else {
            (
                malformed_command(&mut rng).into_bytes(),
                format!("malformed #{i}"),
            )
        };
        let reply = raw_exchange(&handle, &bytes, true, &context);
        assert_structured_error(&reply, &context);
    }
    assert_ping_ok(&handle, "garbage/malformed sweep");
    stop(handle, join);
}

#[test]
fn fuzz_truncated_bodies_close_cleanly_and_server_survives() {
    let _guard = locked();
    let (handle, join) = start();
    let mut rng = Rng64::stream(0xBAD_B0D1E5, &[2]);
    for i in 0..25 {
        let declared = rng.range_usize(1, 4096);
        let sent = rng.range_usize(0, declared);
        let verb = if rng.flip() { "load" } else { "edit" };
        let mut bytes = format!("{verb} trunc-{i} {declared}\n").into_bytes();
        bytes.extend(std::iter::repeat_n(b'x', sent));
        // Half-close after underfeeding the declared length: the server
        // is entitled to wait for the rest until EOF, then must drop
        // the connection without wedging.
        let reply = raw_exchange(&handle, &bytes, true, &format!("truncated body #{i}"));
        assert_structured_error(&reply, &format!("truncated body #{i}"));
    }
    assert_ping_ok(&handle, "truncated-body sweep");
    stop(handle, join);
}

#[test]
fn fuzz_oversized_payload_declarations_get_400() {
    let _guard = locked();
    let (handle, join) = start();
    let mut rng = Rng64::stream(0x0BE5E, &[3]);
    for i in 0..10 {
        // Strictly above MAX_PAYLOAD (16 MiB), up to u64 nonsense.
        let n = 16 * 1024 * 1024 + 1 + rng.next_u64() % (u64::MAX / 2);
        let verb = if rng.flip() { "load" } else { "edit" };
        let context = format!("oversized declaration #{i} ({n})");
        let reply = raw_exchange(
            &handle,
            format!("{verb} big {n}\n").as_bytes(),
            true,
            &context,
        );
        let line = reply.unwrap_or_else(|| panic!("{context}: expected a 400, got close"));
        assert!(line.starts_with("400 "), "{context}: {line:?}");
    }
    assert_ping_ok(&handle, "oversized-declaration sweep");
    stop(handle, join);
}

#[test]
fn fuzz_overlong_request_line_gets_400_not_silent_drop() {
    let _guard = locked();
    let (handle, join) = start();
    // 80 KiB with no newline: over MAX_LINE (64 KiB), never parseable.
    let mut bytes = vec![b'a'; 80 * 1024];
    let reply = raw_exchange(&handle, &bytes, true, "overlong line");
    let line = reply.expect("overlong line: expected a structured 400 before close");
    assert!(
        line.starts_with("400 "),
        "overlong line: expected 400, got {line:?}"
    );
    // Same, but binary heavy — the reply must still be structured.
    for b in bytes.iter_mut() {
        *b = 0xEE;
    }
    let reply = raw_exchange(&handle, &bytes, true, "overlong binary line");
    let line = reply.expect("overlong binary line: expected a structured 400");
    assert!(line.starts_with("400 "), "overlong binary: {line:?}");
    assert_ping_ok(&handle, "overlong-line sweep");
    stop(handle, join);
}

#[test]
fn fuzz_garbage_interleaved_with_valid_commands_does_not_wedge_connection() {
    let _guard = locked();
    let (handle, join) = start();
    let mut rng = Rng64::stream(0x1_7EA5ED, &[4]);
    let stream = TcpStream::connect(handle.addr()).expect("connect");
    stream
        .set_read_timeout(Some(REPLY_DEADLINE))
        .expect("read timeout");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(&stream);
    let mut read_reply = |context: &str| -> String {
        let mut line = String::new();
        match reader.read_line(&mut line) {
            Ok(n) if n > 0 => {
                // Drain any payload so the next read starts at a status line.
                if let Some(len) = line
                    .split_whitespace()
                    .last()
                    .and_then(|t| t.strip_prefix("len="))
                    .and_then(|v| v.parse::<usize>().ok())
                {
                    let mut payload = vec![0u8; len];
                    reader.read_exact(&mut payload).expect(context);
                }
                line.trim_end().to_string()
            }
            other => panic!("{context}: reply missing: {other:?}"),
        }
    };
    for i in 0..20 {
        // Newline-terminated garbage (never a body-carrying verb, which
        // would legitimately eat the following bytes as payload).
        let mut junk = garbage_line(&mut rng);
        if junk.starts_with(b"load ") || junk.starts_with(b"edit ") {
            junk[0] = b'#';
        }
        writer.write_all(&junk).expect("write junk");
        let reply = read_reply(&format!("junk #{i}"));
        let code: u16 = reply
            .split_whitespace()
            .next()
            .and_then(|t| t.parse().ok())
            .unwrap_or_else(|| panic!("junk #{i}: unstructured reply {reply:?}"));
        assert!((400..600).contains(&code), "junk #{i}: {reply:?}");
        // The same connection must still serve valid traffic.
        writer.write_all(b"ping\n").expect("write ping");
        let reply = read_reply(&format!("ping after junk #{i}"));
        assert!(reply.starts_with("200 "), "ping after junk #{i}: {reply:?}");
    }
    drop(reader);
    drop(writer);
    assert_ping_ok(&handle, "interleaved-garbage sweep");
    stop(handle, join);
}
