//! Kill/restart durability tests for `qwm serve --store`.
//!
//! Contracts under test:
//!
//! * **Bitwise warm restart** — a server SIGKILLed mid-session and
//!   restarted against the same store serves `report` byte-identically
//!   to the moment of death, and its first `run` answers through the
//!   *incremental* path (`full_run=false`, committed book imported, no
//!   device re-characterization) with a payload byte-identical to a
//!   never-restarted reference server's.
//! * **Recovery is structural, not heuristic** — a store whose log is
//!   corrupt beyond the torn-tail rule refuses to boot with a
//!   structured error rather than silently dropping committed work.
//!
//! Each test spawns the real `qwm` binary so the kill is a genuine
//! SIGKILL against a separate process, not a simulated drop.

use qwm::server::Client;
use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

const DECK: &str = include_str!("../testdata/path4.sp");
const EDIT1: &str = "resize MN2 1.2u\nload n2 20f\n";
const EDIT2: &str = "resize MN4 1.5u\n";

struct Serve {
    child: Child,
    addr: String,
}

impl Serve {
    /// Spawns `qwm serve --store <dir>` and waits for its address line.
    fn start(store: &Path) -> Serve {
        let mut child = Command::new(env!("CARGO_BIN_EXE_qwm"))
            .args(["serve", "--addr", "127.0.0.1:0", "--obs", "json"])
            .arg("--store")
            .arg(store)
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn qwm serve");
        let stdout = child.stdout.take().expect("piped stdout");
        let mut lines = BufReader::new(stdout).lines();
        let first = lines
            .next()
            .expect("server prints its address")
            .expect("read address line");
        let addr = first
            .strip_prefix("listening on ")
            .unwrap_or_else(|| panic!("unexpected banner {first:?}"))
            .to_string();
        Serve { child, addr }
    }

    fn connect(&self) -> Client {
        let mut c = Client::connect(&self.addr).expect("connect");
        c.set_timeout(Some(Duration::from_secs(60)))
            .expect("timeout");
        c
    }

    /// SIGKILL — no drain, no flush beyond what each append already did.
    fn kill(mut self) {
        self.child.kill().expect("kill server");
        self.child.wait().expect("reap server");
    }
}

fn fresh_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("qwm-restart-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create store dir");
    dir
}

/// `load; run; edit; run; edit` — the second edit is committed to the
/// store but not yet re-timed when the kill lands.
fn drive_to_kill_point(c: &mut Client, sid: &str) -> (String, String) {
    assert!(c.load(sid, DECK).unwrap().ok(), "load");
    let r1 = c.send(&format!("run {sid} qwm slew_ps=20")).unwrap();
    assert!(r1.ok(), "first run: {} {}", r1.status, r1.head);
    assert!(c.edit(sid, EDIT1).unwrap().ok(), "edit 1");
    let r2 = c.send(&format!("run {sid} qwm slew_ps=20")).unwrap();
    assert!(r2.ok(), "second run: {} {}", r2.status, r2.head);
    assert!(c.edit(sid, EDIT2).unwrap().ok(), "edit 2");
    (r1.body().to_string(), r2.body().to_string())
}

#[test]
fn sigkill_then_restart_is_bitwise_and_incremental() {
    let store = fresh_dir("bitwise");
    let sid = "d";

    // Reference: one server that is never killed runs the whole script.
    let reference = Serve::start(&fresh_dir("bitwise-ref"));
    let mut rc = reference.connect();
    let (ref_r1, ref_r2) = drive_to_kill_point(&mut rc, sid);
    let ref_r3 = rc.send(&format!("run {sid} qwm slew_ps=20")).unwrap();
    assert!(ref_r3.ok(), "reference third run");
    let ref_r3 = ref_r3.body().to_string();
    reference.kill();

    // Victim: same script up to the kill point, then SIGKILL.
    let victim = Serve::start(&store);
    let mut vc = victim.connect();
    let (v_r1, v_r2) = drive_to_kill_point(&mut vc, sid);
    assert_eq!(v_r1, ref_r1, "pre-kill first runs agree");
    assert_eq!(v_r2, ref_r2, "pre-kill second runs agree");
    victim.kill();

    // Restart against the same store: the session must be back, warm.
    let revived = Serve::start(&store);
    let mut c = revived.connect();

    // `report` replays the last committed report byte-for-byte.
    let rep = c.send(&format!("report {sid}")).unwrap();
    assert!(rep.ok(), "restored report: {} {}", rep.status, rep.head);
    assert_eq!(rep.body(), ref_r2, "restored report is byte-identical");

    // The store acknowledges the restore, and the restored process
    // never re-characterized a device table (they came from the log).
    let status = c.send("store status").unwrap();
    assert!(status.ok(), "store status: {}", status.head);
    assert!(
        status.head.contains("restores=1"),
        "one restored session: {}",
        status.head
    );
    assert!(
        status.head.contains("characterizations=0"),
        "tables restored, not re-characterized: {}",
        status.head
    );

    // First query re-times only the replayed edit's dirty cone and
    // matches the never-restarted server bitwise — `evaluations` line
    // included, which is the whole point of importing the book.
    let r3 = c.send(&format!("run {sid} qwm slew_ps=20")).unwrap();
    assert!(r3.ok(), "restored run: {} {}", r3.status, r3.head);
    assert_eq!(r3.body(), ref_r3, "restored first run is byte-identical");
    let stats = c.send(&format!("stats {sid}")).unwrap();
    assert!(stats.ok(), "stats: {}", stats.head);
    assert!(
        stats.head.contains("full_run=false"),
        "first restored query is incremental, not cold: {}",
        stats.head
    );

    // The restored process exposes the store gauges over `metrics prom`.
    let prom = c.send("metrics prom").unwrap();
    assert!(prom.ok(), "metrics prom: {}", prom.head);
    for gauge in [
        "qwm_store_bytes",
        "qwm_store_records",
        "qwm_store_restores",
        "qwm_server_mem_rss_bytes",
    ] {
        assert!(prom.body().contains(gauge), "missing {gauge} in prom body");
    }
    revived.kill();
}

#[test]
fn second_restart_still_agrees_after_more_commits() {
    // Durability must compose: kill, restart, commit more work, kill
    // again, restart again — the story survives arbitrary generations.
    let store = fresh_dir("generations");
    let sid = "g";

    let a = Serve::start(&store);
    let mut c = a.connect();
    let (_r1, _r2) = drive_to_kill_point(&mut c, sid);
    a.kill();

    let b = Serve::start(&store);
    let mut c = b.connect();
    let r3 = c.send(&format!("run {sid} qwm slew_ps=20")).unwrap();
    assert!(r3.ok(), "gen-2 run: {} {}", r3.status, r3.head);
    let r3 = r3.body().to_string();
    b.kill();

    let d = Serve::start(&store);
    let mut c = d.connect();
    let rep = c.send(&format!("report {sid}")).unwrap();
    assert!(rep.ok(), "gen-3 report: {}", rep.head);
    assert_eq!(rep.body(), r3, "third generation still byte-identical");
    let status = c.send("store status").unwrap();
    assert!(status.head.contains("restores=1"), "{}", status.head);
    d.kill();
}

#[test]
fn corrupt_store_refuses_to_boot_with_structured_error() {
    let store = fresh_dir("corrupt");
    std::fs::write(store.join("qwm.store"), b"NOTASTORE garbage bytes").unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_qwm"))
        .args(["serve", "--addr", "127.0.0.1:0"])
        .arg("--store")
        .arg(&store)
        .output()
        .expect("run qwm serve");
    assert!(!out.status.success(), "corrupt store must refuse to boot");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("store open"),
        "structured store error, got: {err}"
    );
}

#[test]
fn closed_sessions_stay_closed_across_restart() {
    let store = fresh_dir("closed");
    let a = Serve::start(&store);
    let mut c = a.connect();
    drive_to_kill_point(&mut c, "keep");
    drive_to_kill_point(&mut c, "gone");
    let r = c.send("close gone").unwrap();
    assert!(r.ok() && r.head.contains("existed=true"), "{}", r.head);
    a.kill();

    let b = Serve::start(&store);
    let mut c = b.connect();
    assert!(c.send("report keep").unwrap().ok(), "kept session restored");
    let gone = c.send("report gone").unwrap();
    assert_eq!(gone.status, 404, "closed session is not resurrected");
    let status = c.send("store status").unwrap();
    assert!(status.head.contains("restores=1"), "{}", status.head);
    b.kill();
}
