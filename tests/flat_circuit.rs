//! Whole-circuit (flattened) simulation tests: ring oscillators, flat
//! multi-stage transients vs stage-by-stage STA, and feedback (latch)
//! DC solutions.

use qwm::circuit::flatten::{flatten_netlist, ring_oscillator};
use qwm::circuit::parser::parse_netlist;
use qwm::circuit::waveform::{TransitionKind, Waveform};
use qwm::device::{analytic_models, Technology};
use qwm::spice::dcop::dc_operating_point;
use qwm::spice::engine::{simulate, TransientConfig};
use qwm::sta::engine::StaEngine;
use qwm::sta::evaluator::QwmEvaluator;

#[test]
fn ring_oscillator_oscillates() {
    let tech = Technology::cmosp35();
    let models = analytic_models(&tech);
    let stages = 5;
    let nl = ring_oscillator(&tech, stages, 5e-15).unwrap();
    let flat = flatten_netlist(&nl).unwrap();
    // Kick: one node low, the rest at alternating-ish values.
    let mut init = vec![0.0; flat.stage.node_count()];
    init[flat.stage.source().0] = tech.vdd;
    for i in 0..stages {
        let n = flat.stage.node_by_name(&format!("r{i}")).unwrap();
        init[n.0] = if i % 2 == 0 { 0.2 } else { tech.vdd - 0.2 };
    }
    let horizon = 4e-9;
    let r = simulate(
        &flat.stage,
        &models,
        &[],
        &init,
        &TransientConfig::hspice_1ps(horizon),
    )
    .unwrap();
    let out = flat.stage.node_by_name("r0").unwrap();
    let w = r.waveform(out).unwrap();

    // Count rising crossings of Vdd/2 → oscillation period.
    let half = tech.vdd / 2.0;
    let mut crossings = Vec::new();
    let samples = w.samples();
    for pair in samples.windows(2) {
        if pair[0].1 <= half && pair[1].1 > half {
            crossings.push(pair[0].0);
        }
    }
    assert!(
        crossings.len() >= 3,
        "ring must oscillate repeatedly; saw {} rising crossings",
        crossings.len()
    );
    let periods: Vec<f64> = crossings.windows(2).map(|c| c[1] - c[0]).collect();
    let period = periods.iter().sum::<f64>() / periods.len() as f64;

    // Classic estimate: T = 2 · N · t_p with t_p from a single stage.
    let engine = StaEngine::new(
        qwm::sta::graph::inverter_chain(&tech, 1, 5e-15),
        &models,
        TransitionKind::Fall,
    )
    .unwrap();
    let tp = engine
        .run(&QwmEvaluator::default())
        .unwrap()
        .worst
        .unwrap()
        .1;
    let estimate = 2.0 * stages as f64 * tp;
    // The textbook 2·N·tp estimate uses fast-step, fall-only stage
    // delays; the real ring runs on its own slow slews and alternates
    // rise/fall, so the period sits a small multiple above it.
    let ratio = period / estimate;
    assert!(
        (1.0..5.0).contains(&ratio),
        "period {period:.3e} vs 2·N·tp {estimate:.3e} (ratio {ratio:.2})"
    );
    // Period stability: consecutive periods agree.
    for p in &periods {
        assert!((p - period).abs() / period < 0.1, "{periods:?}");
    }
}

#[test]
fn flat_transient_matches_stage_by_stage_sta() {
    // A 3-inverter chain simulated flat (gates node-driven) must land
    // its final arrival where the stage-by-stage STA puts it.
    let deck = "\
MN1 x a 0 0 nmos W=0.5u L=0.35u
MP1 x a vdd vdd pmos W=1u L=0.35u
MN2 y x 0 0 nmos W=0.5u L=0.35u
MP2 y x vdd vdd pmos W=1u L=0.35u
MN3 z y 0 0 nmos W=0.5u L=0.35u
MP3 z y vdd vdd pmos W=1u L=0.35u
Cx x 0 10f
Cy y 0 10f
Cz z 0 10f
.input a
.output z
";
    let tech = Technology::cmosp35();
    let models = analytic_models(&tech);
    let nl = parse_netlist(deck).unwrap();

    // Stage-by-stage STA, both step-based and slew-aware.
    let engine = StaEngine::new(nl.clone(), &models, TransitionKind::Fall).unwrap();
    let sta_step = engine
        .run(&QwmEvaluator::default())
        .unwrap()
        .worst
        .unwrap()
        .1;
    // Dual-polarity slew-aware STA: x falls, y rises, z falls — the
    // rise leg through the weaker PMOS is what single-direction STA
    // misses.
    let z_net = engine.netlist().find_net("z").unwrap();
    let (fall_rep, _rise_rep) = engine.run_dual(&QwmEvaluator::default(), 2e-12).unwrap();
    let sta_arrival = fall_rep.arrivals[&z_net];
    let (fall_sp, _) = engine
        .run_dual(&qwm::sta::evaluator::SpiceEvaluator::default(), 2e-12)
        .unwrap();
    let sta_spice = fall_sp.arrivals[&z_net];

    // Flat transient: a steps high, x falls, y rises, z falls.
    let flat = flatten_netlist(&nl).unwrap();
    let mut init = vec![tech.vdd; flat.stage.node_count()];
    init[flat.stage.sink().0] = 0.0;
    // DC-consistent start for a = 0: x high, y low, z high.
    let y = flat.stage.node_by_name("y").unwrap();
    init[y.0] = 0.0;
    let inputs = vec![Waveform::step(0.0, 0.0, tech.vdd)];
    let r = simulate(
        &flat.stage,
        &models,
        &inputs,
        &init,
        &TransientConfig::hspice_1ps(4.0 * sta_arrival),
    )
    .unwrap();
    let z = flat.stage.node_by_name("z").unwrap();
    let flat_arrival = r
        .waveform(z)
        .unwrap()
        .crossing(tech.vdd / 2.0, false)
        .expect("z falls");
    // Step-based STA underestimates the flat circuit badly (it ignores
    // the slow inter-stage slews)…
    assert!(
        sta_step < flat_arrival,
        "step STA {sta_step:.3e} vs flat {flat_arrival:.3e}"
    );
    // …dual slew-aware STA recovers most of the gap…
    assert!(
        sta_arrival > 1.4 * sta_step,
        "dual STA sees the slew effect"
    );
    let ratio = sta_arrival / flat_arrival;
    assert!(
        (0.7..1.1).contains(&ratio),
        "dual sta {sta_arrival:.3e} vs flat {flat_arrival:.3e} (step {sta_step:.3e})"
    );
    // …and whatever gap remains is the linear-ramp slew *abstraction*,
    // not QWM: the SPICE evaluator under the same abstraction lands in
    // the same place.
    assert!(
        (sta_arrival - sta_spice).abs() / sta_spice < 0.08,
        "qwm dual {sta_arrival:.3e} vs spice dual {sta_spice:.3e}"
    );
}

#[test]
fn latch_feedback_has_two_stable_dc_states() {
    // Cross-coupled inverters flattened: node-gated feedback. The DC
    // solver must find whichever stable state the guess is nearer to.
    let tech = Technology::cmosp35();
    let models = analytic_models(&tech);
    let deck = "\
MN1 q qb 0 0 nmos W=0.5u L=0.35u
MP1 q qb vdd vdd pmos W=1u L=0.35u
MN2 qb q 0 0 nmos W=0.5u L=0.35u
MP2 qb q vdd vdd pmos W=1u L=0.35u
.output q qb
";
    let nl = parse_netlist(deck).unwrap();
    let flat = flatten_netlist(&nl).unwrap();
    let q = flat.stage.node_by_name("q").unwrap();
    let qb = flat.stage.node_by_name("qb").unwrap();

    let mut guess = vec![tech.vdd / 2.0; flat.stage.node_count()];
    guess[q.0] = 3.0;
    guess[qb.0] = 0.3;
    let v = dc_operating_point(&flat.stage, &models, &[], &guess).unwrap();
    assert!(v[q.0] > tech.vdd - 0.1, "q latches high: {}", v[q.0]);
    assert!(v[qb.0] < 0.1, "qb latches low: {}", v[qb.0]);

    // The opposite seed lands in the opposite state.
    guess[q.0] = 0.3;
    guess[qb.0] = 3.0;
    let v = dc_operating_point(&flat.stage, &models, &[], &guess).unwrap();
    assert!(v[q.0] < 0.1);
    assert!(v[qb.0] > tech.vdd - 0.1);
}

#[test]
fn waveform_accurate_sta_closes_the_ramp_gap() {
    // The full §III-C program: propagate actual QWM output waveforms
    // between stages. On the 3-inverter chain this must land within a
    // few percent of the flat full-circuit transient — tighter than the
    // ramp-abstracted dual STA.
    let deck = "\
MN1 x a 0 0 nmos W=0.5u L=0.35u
MP1 x a vdd vdd pmos W=1u L=0.35u
MN2 y x 0 0 nmos W=0.5u L=0.35u
MP2 y x vdd vdd pmos W=1u L=0.35u
MN3 z y 0 0 nmos W=0.5u L=0.35u
MP3 z y vdd vdd pmos W=1u L=0.35u
Cx x 0 10f
Cy y 0 10f
Cz z 0 10f
.input a
.output z
";
    let tech = Technology::cmosp35();
    let models = analytic_models(&tech);
    let nl = parse_netlist(deck).unwrap();
    let engine = StaEngine::new(nl.clone(), &models, TransitionKind::Fall).unwrap();
    let z_net = engine.netlist().find_net("z").unwrap();

    let (fall_wf, _rise_wf) = engine
        .run_waveform(&qwm::core::evaluate::QwmConfig::high_accuracy(), 2e-12)
        .unwrap();
    let sta_wf = fall_wf[&z_net];

    // Flat reference.
    let flat = flatten_netlist(&nl).unwrap();
    let mut init = vec![tech.vdd; flat.stage.node_count()];
    init[flat.stage.sink().0] = 0.0;
    let y = flat.stage.node_by_name("y").unwrap();
    init[y.0] = 0.0;
    let inputs = vec![Waveform::step(0.0, 0.0, tech.vdd)];
    let r = simulate(
        &flat.stage,
        &models,
        &inputs,
        &init,
        &TransientConfig::hspice_1ps(4.0 * sta_wf),
    )
    .unwrap();
    let z = flat.stage.node_by_name("z").unwrap();
    let flat_arrival = r
        .waveform(z)
        .unwrap()
        .crossing(tech.vdd / 2.0, false)
        .unwrap();

    let err = (sta_wf - flat_arrival).abs() / flat_arrival;
    assert!(
        err < 0.08,
        "waveform STA {sta_wf:.3e} vs flat {flat_arrival:.3e} ({:.1}%)",
        100.0 * err
    );

    // And it beats the ramp-abstracted dual STA on this metric.
    let (fall_dual, _) = engine.run_dual(&QwmEvaluator::default(), 2e-12).unwrap();
    let err_dual = (fall_dual.arrivals[&z_net] - flat_arrival).abs() / flat_arrival;
    assert!(
        err < err_dual,
        "waveform {err:.3} should beat ramp {err_dual:.3}"
    );
}
