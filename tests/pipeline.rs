//! End-to-end pipeline tests: SPICE-subset deck → netlist → stage
//! partitioning → timing graph → arrival propagation, with each of the
//! three stage evaluators.

use qwm::circuit::parser::parse_netlist;
use qwm::circuit::waveform::TransitionKind;
use qwm::device::{analytic_models, Technology};
use qwm::sta::engine::StaEngine;
use qwm::sta::evaluator::{ElmoreEvaluator, QwmEvaluator, SpiceEvaluator, StageEvaluator};
use qwm::sta::graph::inverter_chain;

/// A 4-stage NAND/inverter path as a text deck.
const PATH_DECK: &str = "\
* nand2 -> inv -> nand2 -> inv
MN1a n1 a   m1 0    nmos W=1u   L=0.35u
MN1b m1 b   0  0    nmos W=1u   L=0.35u
MP1a n1 a   vdd vdd pmos W=1u   L=0.35u
MP1b n1 b   vdd vdd pmos W=1u   L=0.35u
MN2  n2 n1  0  0    nmos W=0.5u L=0.35u
MP2  n2 n1  vdd vdd pmos W=1u   L=0.35u
MN3a n3 n2  m3 0    nmos W=1u   L=0.35u
MN3b m3 c   0  0    nmos W=1u   L=0.35u
MP3a n3 n2  vdd vdd pmos W=1u   L=0.35u
MP3b n3 c   vdd vdd pmos W=1u   L=0.35u
MN4  n4 n3  0  0    nmos W=0.5u L=0.35u
MP4  n4 n3  vdd vdd pmos W=1u   L=0.35u
Cl   n4 0  12f
.input a b c
.output n4
.end
";

#[test]
fn deck_to_timing_report() {
    let tech = Technology::cmosp35();
    let models = analytic_models(&tech);
    let netlist = parse_netlist(PATH_DECK).unwrap();
    let out = netlist.find_net("n4").unwrap();
    let engine = StaEngine::new(netlist, &models, TransitionKind::Fall).unwrap();
    assert_eq!(engine.graph().len(), 4, "four channel-connected stages");

    let report = engine.run(&QwmEvaluator::default()).unwrap();
    let (worst_net, worst_arrival) = report.worst.unwrap();
    assert_eq!(worst_net, out);
    assert!(worst_arrival > 10e-12 && worst_arrival < 1e-9);
    assert_eq!(report.critical_path.len(), 4);
    assert_eq!(report.evaluations, 4);

    // Arrivals monotone along the path n1 → n2 → n3 → n4.
    let nl = engine.netlist();
    let arr = |name: &str| report.arrivals[&nl.find_net(name).unwrap()];
    assert!(arr("n1") < arr("n2"));
    assert!(arr("n2") < arr("n3"));
    assert!(arr("n3") < arr("n4"));
}

#[test]
fn evaluators_rank_sanely_on_the_same_graph() {
    let tech = Technology::cmosp35();
    let models = analytic_models(&tech);
    // Separate engines so the per-evaluator caches don't interact with
    // the assertion about evaluation counts.
    let mk = || {
        StaEngine::new(
            parse_netlist(PATH_DECK).unwrap(),
            &models,
            TransitionKind::Fall,
        )
        .unwrap()
    };
    let evaluators: Vec<Box<dyn StageEvaluator>> = vec![
        Box::new(ElmoreEvaluator),
        Box::new(QwmEvaluator::default()),
        Box::new(SpiceEvaluator::default()),
    ];
    let mut results = Vec::new();
    for ev in &evaluators {
        let engine = mk();
        let r = engine.run(ev.as_ref()).unwrap();
        results.push((ev.name(), r.worst.unwrap().1));
    }
    // QWM within 10% of SPICE; Elmore within the right decade.
    let spice = results.iter().find(|r| r.0 == "spice").unwrap().1;
    let qwm = results.iter().find(|r| r.0 == "qwm").unwrap().1;
    let elmore = results.iter().find(|r| r.0 == "elmore").unwrap().1;
    assert!(
        (qwm - spice).abs() / spice < 0.10,
        "qwm {qwm} vs spice {spice}"
    );
    assert!(elmore / spice > 0.2 && elmore / spice < 5.0);
}

#[test]
fn evaluator_caches_are_independent() {
    let tech = Technology::cmosp35();
    let models = analytic_models(&tech);
    let nl = inverter_chain(&tech, 3, 10e-15);
    let engine = StaEngine::new(nl, &models, TransitionKind::Fall).unwrap();
    let r1 = engine.run(&ElmoreEvaluator).unwrap();
    assert_eq!(r1.evaluations, 3);
    // A different evaluator must not hit the Elmore cache.
    let r2 = engine.run(&QwmEvaluator::default()).unwrap();
    assert_eq!(r2.evaluations, 3);
    // But re-running the same evaluator is fully cached.
    let r3 = engine.run(&QwmEvaluator::default()).unwrap();
    assert_eq!(r3.evaluations, 0);
    // And the two evaluators disagree (they'd better — different models).
    assert_ne!(r1.worst.unwrap().1, r2.worst.unwrap().1);
}

#[test]
fn incremental_flow_matches_full_reanalysis() {
    let tech = Technology::cmosp35();
    let models = analytic_models(&tech);
    let depth = 5;

    // Incremental: one engine, resize, re-run.
    let mut engine = StaEngine::new(
        inverter_chain(&tech, depth, 10e-15),
        &models,
        TransitionKind::Fall,
    )
    .unwrap();
    engine.run(&QwmEvaluator::default()).unwrap();
    engine.resize_device(2 * 2, 2.5 * tech.w_min).unwrap(); // MN2
    let incr = engine.run(&QwmEvaluator::default()).unwrap();
    // Two stages re-evaluate: the resized one AND its driver (whose
    // fanout gate load grew with MN2's width).
    assert_eq!(incr.evaluations, 2);

    // Full: a fresh engine over the equivalently resized netlist.
    let mut nl = inverter_chain(&tech, depth, 10e-15);
    let geom = qwm::device::Geometry {
        w: 2.5 * tech.w_min,
        ..nl.devices()[4].geom
    };
    nl.set_device_geometry(4, geom).unwrap();
    let fresh = StaEngine::new(nl, &models, TransitionKind::Fall).unwrap();
    let full = fresh.run(&QwmEvaluator::default()).unwrap();
    assert_eq!(full.evaluations, depth);

    let a = incr.worst.unwrap().1;
    let b = full.worst.unwrap().1;
    assert!(
        (a - b).abs() < 1e-15 + 1e-9 * b,
        "incremental {a} vs full {b}"
    );
}

#[test]
fn pass_transistor_fusion_is_timed_as_one_stage() {
    // The paper's Figure 1: a NAND whose output drives a pass transistor
    // is one stage; its delay covers the full chain through the pass
    // device.
    let deck = "\
MN1a x a  m 0    nmos W=1u L=0.35u
MN1b m  b  0 0   nmos W=1u L=0.35u
MP1a x a  vdd vdd pmos W=1u L=0.35u
MP1b x b  vdd vdd pmos W=1u L=0.35u
MPASS x en y 0   nmos W=1u L=0.35u
Cy y 0 8f
.input a b en
.output y
";
    let tech = Technology::cmosp35();
    let models = analytic_models(&tech);
    let netlist = parse_netlist(deck).unwrap();
    let engine = StaEngine::new(netlist, &models, TransitionKind::Fall).unwrap();
    assert_eq!(engine.graph().len(), 1);
    let r = engine.run(&QwmEvaluator::default()).unwrap();
    // Worst output is y (behind the pass device), reached through the
    // single fused stage.
    let y = engine.netlist().find_net("y").unwrap();
    assert_eq!(r.worst.unwrap().0, y);
    assert_eq!(
        r.evaluations,
        engine.graph().stage(r.critical_path[0]).output_nets.len()
    );
}

#[test]
fn decoder_tree_is_one_stage_with_all_leaves() {
    // The full Fig. 3 tree: one channel-connected component, 2^L leaf
    // outputs, each timed via its own worst root path.
    let tech = Technology::cmosp35();
    let models = analytic_models(&tech);
    let nl = qwm::circuit::cells::decoder_tree_netlist(&tech, 3, 50e-6, 10e-15).unwrap();
    let engine = StaEngine::new(nl, &models, TransitionKind::Fall).unwrap();
    assert_eq!(engine.graph().len(), 1, "whole tree is one stage");
    assert_eq!(engine.graph().partitions()[0].output_nets.len(), 8);

    let report = engine.run(&QwmEvaluator::default()).unwrap();
    assert_eq!(report.evaluations, 8, "one evaluation per leaf");
    // The tree is symmetric: all leaf arrivals agree closely.
    let arrivals: Vec<f64> = engine.graph().partitions()[0]
        .output_nets
        .iter()
        .map(|n| report.arrivals[n])
        .collect();
    let lo = arrivals.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = arrivals.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    assert!(
        (hi - lo) / lo < 0.02,
        "symmetric leaves: {lo:.3e} .. {hi:.3e}"
    );
    assert!(lo > 10e-12 && hi < 5e-9);
}

#[test]
fn decoder_tree_leaf_delay_tracks_spice() {
    let tech = Technology::cmosp35();
    let models = analytic_models(&tech);
    let nl = qwm::circuit::cells::decoder_tree_netlist(&tech, 2, 50e-6, 10e-15).unwrap();
    let engine = StaEngine::new(nl, &models, TransitionKind::Fall).unwrap();
    let q = engine.run(&QwmEvaluator::default()).unwrap();
    let s = engine
        .run(&qwm::sta::evaluator::SpiceEvaluator::default())
        .unwrap();
    let (qa, sa) = (q.worst.unwrap().1, s.worst.unwrap().1);
    assert!(
        (qa - sa).abs() / sa < 0.08,
        "tree leaf: qwm {qa:.3e} vs spice {sa:.3e}"
    );
}
