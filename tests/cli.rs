//! End-to-end tests of the `qwm` command-line tool.

use std::process::Command;

fn deck_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("testdata/path4.sp")
}

fn run_cli(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_qwm"))
        .args(args)
        .output()
        .expect("spawn qwm");
    (
        String::from_utf8_lossy(&out.stdout).to_string(),
        String::from_utf8_lossy(&out.stderr).to_string(),
        out.status.success(),
    )
}

#[test]
fn cli_times_the_sample_deck() {
    let deck = deck_path();
    let (stdout, stderr, ok) = run_cli(&[deck.to_str().unwrap()]);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("4 stages"), "{stdout}");
    assert!(stdout.contains("worst arrival"), "{stdout}");
    assert!(stdout.contains("n4"), "{stdout}");
}

#[test]
fn cli_slack_and_violation() {
    let deck = deck_path();
    let d = deck.to_str().unwrap();
    let (pass_out, _, ok) = run_cli(&[d, "--required", "500"]);
    assert!(ok);
    assert!(pass_out.contains("slack +"), "{pass_out}");
    let (fail_out, _, ok) = run_cli(&[d, "--required", "10"]);
    assert!(ok, "violations report, they don't crash");
    assert!(fail_out.contains("VIOLATED"), "{fail_out}");
}

#[test]
fn cli_evaluator_selection() {
    let deck = deck_path();
    let d = deck.to_str().unwrap();
    for ev in ["qwm", "elmore", "spice"] {
        let (out, stderr, ok) = run_cli(&[d, "--evaluator", ev]);
        assert!(ok, "{ev}: {stderr}");
        assert!(out.contains(&format!("evaluator = {ev}")), "{out}");
    }
    let (_, stderr, ok) = run_cli(&[d, "--evaluator", "magic"]);
    assert!(!ok);
    assert!(stderr.contains("unknown evaluator"));
}

#[test]
fn cli_slew_mode_reports_output_slew() {
    let deck = deck_path();
    let (out, _, ok) = run_cli(&[deck.to_str().unwrap(), "--slew", "25"]);
    assert!(ok);
    assert!(out.contains("output slew"), "{out}");
}

#[test]
fn cli_edits_what_if_mode() {
    let deck = deck_path();
    let edits = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("testdata/path4.edits");
    let (out, stderr, ok) = run_cli(&[
        deck.to_str().unwrap(),
        "--edits",
        edits.to_str().unwrap(),
        "--evaluator",
        "elmore",
    ]);
    assert!(ok, "stderr: {stderr}");
    assert!(out.contains("=== baseline ==="), "{out}");
    assert!(out.contains("=== what-if (3 edits) ==="), "{out}");
    assert!(out.contains("delta "), "{out}");
    // The stats line proves the re-run was cone-limited, not full.
    assert!(out.contains("incremental:"), "{out}");
    assert!(out.contains("dirty"), "{out}");
}

#[test]
fn cli_edits_rejects_bad_files() {
    let deck = deck_path();
    let d = deck.to_str().unwrap();
    let dir = std::env::temp_dir();
    let bad_device = dir.join("qwm_cli_bad_device.edits");
    std::fs::write(&bad_device, "resize NOPE 1u\n").unwrap();
    let (_, stderr, ok) = run_cli(&[d, "--edits", bad_device.to_str().unwrap()]);
    assert!(!ok);
    assert!(stderr.contains("unknown device"), "{stderr}");
    let bad_verb = dir.join("qwm_cli_bad_verb.edits");
    std::fs::write(&bad_verb, "teleport n2 1f\n").unwrap();
    let (_, stderr, ok) = run_cli(&[d, "--edits", bad_verb.to_str().unwrap()]);
    assert!(!ok);
    assert!(stderr.contains("unknown edit"), "{stderr}");
    let (_, stderr, ok) = run_cli(&[d, "--edits", "/nonexistent.edits"]);
    assert!(!ok);
    assert!(stderr.contains("cannot read"), "{stderr}");
}

#[test]
fn cli_errors_are_clean() {
    let (_, stderr, ok) = run_cli(&[]);
    assert!(!ok);
    assert!(stderr.contains("usage:"));
    let (_, stderr, ok) = run_cli(&["/nonexistent/deck.sp"]);
    assert!(!ok);
    assert!(stderr.contains("cannot read"));
    let (_, stderr, ok) = run_cli(&[deck_path().to_str().unwrap(), "--direction", "sideways"]);
    assert!(!ok);
    assert!(stderr.contains("unknown direction"));
}
