//! Randomized cross-engine stress tests over richer topologies:
//! transistor chains interleaved with wires, dynamic (domino) gates and
//! pass-transistor structures.

use qwm::circuit::cells;
use qwm::circuit::stage::DeviceKind;
use qwm::circuit::waveform::{TransitionKind, Waveform};
use qwm::core::evaluate::{evaluate, QwmConfig};
use qwm::device::model::Geometry;
use qwm::device::{analytic_models, Technology};
use qwm::num::rng::Rng64;
use qwm::spice::engine::{initial_uniform, simulate, TransientConfig};
use qwm::sta::evaluator::{QwmEvaluator, SpiceEvaluator, StageEvaluator};

/// Builds a discharge chain alternating transistors and (optional) wire
/// segments from a compact spec: `(width_factor, wire_len_um)` per level,
/// `wire_len_um == 0` meaning no wire at that level.
fn mixed_chain(tech: &Technology, spec: &[(f64, f64)], load: f64) -> qwm::circuit::LogicStage {
    let mut b = qwm::circuit::LogicStage::builder("mixed");
    let gnd = b.gnd();
    let mut below = gnd;
    let last = spec.len() - 1;
    for (i, &(wf, wire_um)) in spec.iter().enumerate() {
        let t_top = b.node(&format!("t{i}"));
        let input = b.input(&format!("g{i}"));
        b.transistor(
            DeviceKind::Nmos,
            input,
            t_top,
            below,
            Geometry::new(wf * tech.w_min, tech.l_min),
        );
        below = t_top;
        if wire_um > 0.0 {
            let w_top = if i == last {
                b.node("out")
            } else {
                b.node(&format!("w{i}"))
            };
            b.wire(w_top, below, 0.6e-6, wire_um * 1e-6);
            below = w_top;
        } else if i == last {
            // Ensure the chain ends at a node named "out".
            let out = b.node("out");
            b.wire(out, below, 0.6e-6, 1e-6);
            below = out;
        }
    }
    b.output(below);
    b.load(below, load);
    b.build().expect("valid chain")
}

/// Random transistor/wire chains: QWM tracks SPICE within the
/// worst-case band.
#[test]
fn random_mixed_chain_agreement() {
    let tech = Technology::cmosp35();
    let models = analytic_models(&tech);
    let mut rng = Rng64::seed_from_u64(0x31dc4a1);
    for _ in 0..10 {
        let levels = rng.range_usize(2, 6);
        let spec: Vec<(f64, f64)> = (0..levels)
            .map(|_| {
                let wf = rng.range(1.0, 4.0);
                let wire_um = if rng.flip() {
                    0.0
                } else {
                    rng.range(20.0, 150.0)
                };
                (wf, wire_um)
            })
            .collect();
        let load_ff = rng.range(5.0, 25.0);
        let stage = mixed_chain(&tech, &spec, load_ff * 1e-15);
        let out = stage.node_by_name("out").unwrap();
        let inputs: Vec<Waveform> = (0..stage.inputs().len())
            .map(|_| Waveform::step(0.0, 0.0, tech.vdd))
            .collect();
        let init = initial_uniform(&stage, &models, tech.vdd);
        let q = evaluate(
            &stage,
            &models,
            &inputs,
            &init,
            out,
            TransitionKind::Fall,
            &QwmConfig::default(),
        )
        .expect("qwm");
        let dq = q.delay_50(tech.vdd, 0.0).expect("delay");
        let s = simulate(
            &stage,
            &models,
            &inputs,
            &init,
            &TransientConfig::hspice_1ps((3.0 * dq).max(300e-12)),
        )
        .expect("spice");
        let ds = s
            .waveform(out)
            .unwrap()
            .crossing(tech.vdd / 2.0, false)
            .expect("falls");
        let err = (dq - ds).abs() / ds;
        assert!(
            err < 0.08,
            "spec {spec:?}: qwm {dq:.3e} spice {ds:.3e} err {err:.3}"
        );
    }
}

#[test]
fn domino_nand_evaluation_delay() {
    let tech = Technology::cmosp35();
    let models = analytic_models(&tech);
    for n in [2usize, 4] {
        let g = cells::domino_nand(&tech, n, cells::DEFAULT_LOAD).unwrap();
        let out = g.node_by_name("out").unwrap();
        let dq = QwmEvaluator::default()
            .delay(&g, &models, out, TransitionKind::Fall)
            .unwrap();
        let ds = SpiceEvaluator::default()
            .delay(&g, &models, out, TransitionKind::Fall)
            .unwrap();
        assert!(
            (dq - ds).abs() / ds < 0.06,
            "domino_nand{n}: qwm {dq} vs spice {ds}"
        );
    }
}

#[test]
fn domino_depth_ordering() {
    // Deeper evaluate stacks are slower, under both engines.
    let tech = Technology::cmosp35();
    let models = analytic_models(&tech);
    let mut prev = 0.0;
    for n in 1..=4 {
        let g = cells::domino_nand(&tech, n, cells::DEFAULT_LOAD).unwrap();
        let out = g.node_by_name("out").unwrap();
        let d = QwmEvaluator::default()
            .delay(&g, &models, out, TransitionKind::Fall)
            .unwrap();
        assert!(d > prev, "n={n}: {d} vs {prev}");
        prev = d;
    }
}

#[test]
fn mux_pass_path_delay() {
    let tech = Technology::cmosp35();
    let models = analytic_models(&tech);
    let g = cells::mux2_pass(&tech, cells::DEFAULT_LOAD).unwrap();
    let out = g.node_by_name("out").unwrap();
    let dq = QwmEvaluator::default()
        .delay(&g, &models, out, TransitionKind::Fall)
        .unwrap();
    let ds = SpiceEvaluator::default()
        .delay(&g, &models, out, TransitionKind::Fall)
        .unwrap();
    assert!((dq - ds).abs() / ds < 0.10, "mux2: qwm {dq} vs spice {ds}");
}
