//! Corruption fuzzing for the durable design store.
//!
//! The recovery contract (crates/store/src/log.rs) promises that *any*
//! byte-level damage to the log resolves to exactly one of two
//! outcomes: a clean torn-tail truncation (incomplete or CRC-damaged
//! final record) or a structured [`StoreError`] — never a panic and
//! never silently skipped interior data. This suite drives a pristine
//! store containing every record kind (device tables, a snapshot with
//! a committed book, edits, a close tombstone) through hundreds of
//! seeded random mutations and asserts that contract, plus the
//! idempotence of recovery: once an open succeeds, reopening performs
//! no further truncation.
//!
//! The seed is fixed so a failure reproduces exactly; print the trial
//! number to replay one mutation in isolation.

use qwm::circuit::parser::parse_netlist;
use qwm::circuit::waveform::TransitionKind;
use qwm::server::shared_models;
use qwm::sta::evaluator::QwmEvaluator;
use qwm::sta::report::golden_report;
use qwm::sta::StaEngine;
use qwm::store::{DesignStore, SessionSnapshot, StoreError};
use std::path::PathBuf;

const DECK: &str = include_str!("../testdata/path4.sp");
const SEED: u64 = 0x5eed_0051;

/// xorshift64* — tiny, deterministic, good enough to scatter damage.
struct Rng64(u64);

impl Rng64 {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
}

fn fresh_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("qwm-store-fuzz-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create store dir");
    dir
}

/// Builds a store holding every record kind, with a real committed
/// book inside the snapshot, and returns the log's pristine bytes.
fn pristine_store(name: &str) -> (PathBuf, Vec<u8>) {
    let dir = fresh_dir(name);
    let models = shared_models().expect("models");
    let netlist = parse_netlist(DECK).expect("deck");
    let mut engine = StaEngine::new(netlist.clone(), models, TransitionKind::Fall).expect("engine");
    engine.set_input_slew(20e-12).expect("slew");
    let report = engine
        .run_incremental(&QwmEvaluator::default())
        .expect("run");
    let golden = golden_report(&report, engine.netlist());

    let (mut store, recovered) = DesignStore::open(&dir).expect("open fresh");
    assert!(recovered.sessions.is_empty());
    store
        .sync_tables(&qwm::device::cached_tables())
        .expect("sync tables");
    let snap = SessionSnapshot {
        sid: "fuzz".to_string(),
        direction: TransitionKind::Fall,
        input_slew: 20e-12,
        runs: 1,
        qwm_retries: 2,
        stage_wall_ns: Some(5_000_000),
        last_report: Some(golden),
        netlist,
        committed: engine.export_committed(),
        committed_corners: None,
    };
    store.append_snapshot(&snap).expect("snapshot");
    store
        .append_edits("fuzz", "resize MN2 1.2u\nload n2 20f\n")
        .expect("edits");
    store.append_close("other").expect("close");
    drop(store);
    let bytes = std::fs::read(dir.join("qwm.store")).expect("read log");
    (dir, bytes)
}

#[test]
fn random_damage_recovers_or_errs_never_panics() {
    let (dir, pristine) = pristine_store("random");
    let mut rng = Rng64(SEED);
    let mut outcomes = [0usize; 2]; // [recovered, structured error]
    for trial in 0..300 {
        let mut data = pristine.clone();
        // 1-3 mutations per trial: damage compounds in real crashes.
        for _ in 0..1 + rng.below(3) {
            match rng.below(5) {
                // Flip one bit anywhere (header, frame, payload).
                0 => {
                    let i = rng.below(data.len());
                    data[i] ^= 1 << rng.below(8);
                }
                // Truncate to a random prefix.
                1 => data.truncate(rng.below(data.len() + 1)),
                // Splat a random u32 over a frame-sized window —
                // manufactures zero-length and oversized frames.
                2 => {
                    if data.len() >= 4 {
                        let i = rng.below(data.len() - 3);
                        let v = (rng.next() as u32).to_le_bytes();
                        data[i..i + 4].copy_from_slice(&v);
                    }
                }
                // Zero a random span.
                3 => {
                    let i = rng.below(data.len());
                    let n = rng.below(64).min(data.len() - i);
                    data[i..i + n].fill(0);
                }
                // Append garbage — a torn in-flight append.
                _ => {
                    for _ in 0..1 + rng.below(32) {
                        data.push(rng.next() as u8);
                    }
                }
            }
        }
        std::fs::write(dir.join("qwm.store"), &data).expect("write damaged log");
        match DesignStore::open(&dir) {
            Ok((store, _recovered)) => {
                outcomes[0] += 1;
                let truncated = store.status().truncated_tails;
                drop(store);
                // Recovery is idempotent: a second open of the repaired
                // file must be clean — no further truncation.
                let (again, _) = DesignStore::open(&dir)
                    .unwrap_or_else(|e| panic!("trial {trial}: reopen after repair: {e}"));
                assert_eq!(
                    again.status().truncated_tails,
                    0,
                    "trial {trial}: truncation (was {truncated}) must be durable"
                );
            }
            Err(e) => {
                outcomes[1] += 1;
                assert!(
                    !e.to_string().is_empty(),
                    "trial {trial}: error must describe itself"
                );
            }
        }
    }
    // The mutation mix must actually exercise both outcomes, or the
    // fuzz is testing nothing.
    assert!(outcomes[0] > 10, "too few recoveries: {outcomes:?}");
    assert!(outcomes[1] > 10, "too few structured errors: {outcomes:?}");
}

#[test]
fn torn_snapshot_tail_recovers_the_prefix() {
    let (dir, pristine) = pristine_store("torn");
    // Chop into the final record (the close tombstone) so the snapshot
    // and edits survive but the tail is torn.
    std::fs::write(dir.join("qwm.store"), &pristine[..pristine.len() - 3]).unwrap();
    let (store, recovered) = DesignStore::open(&dir).expect("torn tail recovers");
    assert_eq!(store.status().truncated_tails, 1);
    assert_eq!(recovered.sessions.len(), 1, "snapshot survives");
    let sess = &recovered.sessions[0];
    assert_eq!(sess.snapshot.sid, "fuzz");
    assert_eq!(sess.edits.len(), 1, "edit script survives");
    assert!(sess.snapshot.committed.is_some(), "committed book survives");
    // The store remains appendable after repair.
    drop(store);
    let (mut store, _) = DesignStore::open(&dir).expect("reopen");
    store.append_close("fuzz").expect("append after repair");
}

#[test]
fn interior_bitflip_is_corrupt_not_truncation() {
    let (dir, pristine) = pristine_store("interior");
    // Damage a payload byte of the very first record (a device table):
    // interior corruption must be an error, never a silent skip.
    let mut data = pristine.clone();
    data[12 + 8 + 10] ^= 0x10;
    std::fs::write(dir.join("qwm.store"), &data).unwrap();
    match DesignStore::open(&dir) {
        Err(StoreError::Corrupt { offset, .. }) => assert_eq!(offset, 12),
        other => panic!("expected Corrupt at offset 12, got {other:?}"),
    }
}

#[test]
fn zero_length_and_oversized_frames_are_structured_errors() {
    let (dir, pristine) = pristine_store("frames");
    let mut zeroed = pristine.clone();
    zeroed[12..16].fill(0);
    std::fs::write(dir.join("qwm.store"), &zeroed).unwrap();
    assert!(matches!(
        DesignStore::open(&dir),
        Err(StoreError::ZeroLength { offset: 12 })
    ));
    let mut huge = pristine.clone();
    huge[12..16].copy_from_slice(&u32::MAX.to_le_bytes());
    std::fs::write(dir.join("qwm.store"), &huge).unwrap();
    assert!(matches!(
        DesignStore::open(&dir),
        Err(StoreError::Oversized { offset: 12, .. })
    ));
}

#[test]
fn orphan_edits_are_dropped_on_recovery() {
    let dir = fresh_dir("orphan");
    let (mut store, _) = DesignStore::open(&dir).expect("open");
    store
        .append_edits("never-snapshotted", "resize MN2 2u\n")
        .expect("append");
    drop(store);
    let (_store, recovered) = DesignStore::open(&dir).expect("reopen");
    assert!(
        recovered.sessions.is_empty(),
        "edits without a snapshot anchor must not invent a session"
    );
}
