#!/usr/bin/env bash
# Tier-1 verification gate: release build, full test suite, formatting
# and lints. Run from anywhere; operates on the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

# The parallel engine must behave identically when forced wide
# (QWM_THREADS=4 engines on every test) and when the harness itself is
# serialized (RUST_TEST_THREADS=1 exposes ordering assumptions).
echo "==> QWM_THREADS=4 cargo test -q"
QWM_THREADS=4 cargo test -q

echo "==> RUST_TEST_THREADS=1 cargo test -q"
RUST_TEST_THREADS=1 cargo test -q

# Incremental gate: the dirty-cone re-timing suite must hold when the
# engines are forced wide (bitwise identity vs cold runs is asserted
# per worker count inside the suite too).
echo "==> QWM_THREADS=4 cargo test -q --test incremental"
QWM_THREADS=4 cargo test -q --test incremental

# Corner gate: the batched multi-corner determinism matrix must hold
# when the engines are forced wide (batched-vs-independent bitwise
# identity is asserted per worker count inside the suite), and the
# corners_sweep bench must meet its speedup target over sequential
# single-corner runs (byte-identical reports asserted before any
# number is reported).
echo "==> QWM_THREADS=4 cargo test -q --test corners"
QWM_THREADS=4 cargo test -q --test corners

echo "==> corners_sweep bench (BENCH_corners.json)"
cargo build --release -p qwm-bench
./target/release/corners_sweep BENCH_corners.json
grep -q '"meets_target": true' BENCH_corners.json
grep -q '"bitwise_identical": true' BENCH_corners.json

# Failure-path gate: the fault-injection suite must also hold when the
# whole binary runs under an ambient probabilistic chaos plan (two
# fixed seeds so the streams differ but stay reproducible).
echo "==> QWM_FAULTS chaos plans (seeds 1, 2)"
QWM_FAULTS='seed=1;qwm.region=noconv:0.5' cargo test -q --test fault_injection
QWM_FAULTS='seed=2;qwm.region=singular:0.5;spice.adaptive=timeout:0.25' \
    cargo test -q --test fault_injection

# Observability gate, part 1: telemetry must never perturb results.
# With tracing and obs off, the CLI report is byte-identical to the
# committed golden.
echo "==> tracing-off golden identity (path4 CLI)"
./target/release/qwm testdata/path4.sp --slew 20 --threads 2 \
    > target/path4.cli.out 2>&1
diff -u testdata/golden/path4.cli.golden target/path4.cli.out

# Observability gate, part 2: QWM_OBS=json emits one well-formed JSON
# object per telemetry line, and `qwm obs-report` accepts the stream.
echo "==> QWM_OBS=json telemetry round-trip (path4 CLI)"
QWM_OBS=json ./target/release/qwm testdata/path4.sp --slew 20 --threads 2 \
    2>/dev/null | grep '^{' > target/path4.obs.jsonl
test -s target/path4.obs.jsonl
./target/release/qwm obs-report target/path4.obs.jsonl --check-only

# Serving gate: boot `qwm serve` on an ephemeral port, drive it with
# the load generator (seeded edit+run streams over concurrent
# connections, zero failures tolerated), compare against per-process
# cold invocations, and verify a clean drain. Emits BENCH_server.json
# with queue-wait vs solve-time percentiles, plus a traced-run
# metrics/trace dump rendered to a self-contained HTML report.
echo "==> server smoke (qwm serve + server_load)"
cargo build --release -p qwm-bench
rm -f target/serve_smoke.out
./target/release/qwm serve --addr 127.0.0.1:0 --max-inflight 8 \
    > target/serve_smoke.out 2>&1 &
SERVE_PID=$!
ADDR=""
for _ in $(seq 1 100); do
    ADDR=$(sed -n 's/^listening on //p' target/serve_smoke.out)
    [ -n "$ADDR" ] && break
    sleep 0.1
done
if [ -z "$ADDR" ]; then
    echo "server never reported its address" >&2
    kill "$SERVE_PID" 2>/dev/null || true
    exit 1
fi
./target/release/server_load --addr "$ADDR" --connections 8 --requests 25 \
    --cold ./target/release/qwm --obs-dump target/serve_obs.jsonl \
    --shutdown --out BENCH_server.json
wait "$SERVE_PID"
grep -q '"failures": 0,' BENCH_server.json
grep -q '"warm_breakdown"' BENCH_server.json
grep -q '^drained$' target/serve_smoke.out
./target/release/qwm obs-report target/serve_obs.jsonl \
    --out target/serve_obs.html --title "server smoke telemetry"
test -s target/serve_obs.html

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> all checks passed"
