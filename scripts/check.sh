#!/usr/bin/env bash
# Tier-1 verification gate: release build, full test suite, formatting
# and lints. Run from anywhere; operates on the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

# The parallel engine must behave identically when forced wide
# (QWM_THREADS=4 engines on every test) and when the harness itself is
# serialized (RUST_TEST_THREADS=1 exposes ordering assumptions).
echo "==> QWM_THREADS=4 cargo test -q"
QWM_THREADS=4 cargo test -q

echo "==> RUST_TEST_THREADS=1 cargo test -q"
RUST_TEST_THREADS=1 cargo test -q

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> all checks passed"
