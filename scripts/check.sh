#!/usr/bin/env bash
# Tier-1 verification gate: release build, full test suite, formatting
# and lints. Run from anywhere; operates on the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

# The parallel engine must behave identically when forced wide
# (QWM_THREADS=4 engines on every test) and when the harness itself is
# serialized (RUST_TEST_THREADS=1 exposes ordering assumptions).
echo "==> QWM_THREADS=4 cargo test -q"
QWM_THREADS=4 cargo test -q

echo "==> RUST_TEST_THREADS=1 cargo test -q"
RUST_TEST_THREADS=1 cargo test -q

# Incremental gate: the dirty-cone re-timing suite must hold when the
# engines are forced wide (bitwise identity vs cold runs is asserted
# per worker count inside the suite too).
echo "==> QWM_THREADS=4 cargo test -q --test incremental"
QWM_THREADS=4 cargo test -q --test incremental

# Failure-path gate: the fault-injection suite must also hold when the
# whole binary runs under an ambient probabilistic chaos plan (two
# fixed seeds so the streams differ but stay reproducible).
echo "==> QWM_FAULTS chaos plans (seeds 1, 2)"
QWM_FAULTS='seed=1;qwm.region=noconv:0.5' cargo test -q --test fault_injection
QWM_FAULTS='seed=2;qwm.region=singular:0.5;spice.adaptive=timeout:0.25' \
    cargo test -q --test fault_injection

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> all checks passed"
