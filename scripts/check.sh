#!/usr/bin/env bash
# Tier-1 verification gate: release build, full test suite, formatting
# and lints. Run from anywhere; operates on the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

# qwm-bench is outside default-members, so its suites (capacity deck
# parsing, replay determinism, schema/compare gate, bounded live ramps)
# need an explicit invocation.
echo "==> cargo test -q -p qwm-bench"
cargo test -q -p qwm-bench

# The parallel engine must behave identically when forced wide
# (QWM_THREADS=4 engines on every test) and when the harness itself is
# serialized (RUST_TEST_THREADS=1 exposes ordering assumptions).
echo "==> QWM_THREADS=4 cargo test -q"
QWM_THREADS=4 cargo test -q

echo "==> RUST_TEST_THREADS=1 cargo test -q"
RUST_TEST_THREADS=1 cargo test -q

# Incremental gate: the dirty-cone re-timing suite must hold when the
# engines are forced wide (bitwise identity vs cold runs is asserted
# per worker count inside the suite too).
echo "==> QWM_THREADS=4 cargo test -q --test incremental"
QWM_THREADS=4 cargo test -q --test incremental

# Corner gate: the batched multi-corner determinism matrix must hold
# when the engines are forced wide (batched-vs-independent bitwise
# identity is asserted per worker count inside the suite), and the
# corners_sweep bench must meet its speedup target over sequential
# single-corner runs (byte-identical reports asserted before any
# number is reported).
echo "==> QWM_THREADS=4 cargo test -q --test corners"
QWM_THREADS=4 cargo test -q --test corners

echo "==> corners_sweep bench (BENCH_corners.json)"
cargo build --release -p qwm-bench
./target/release/corners_sweep BENCH_corners.json
grep -q '"meets_target": true' BENCH_corners.json
grep -q '"bitwise_identical": true' BENCH_corners.json

# Kernel gate: the warm hot path must not touch the allocator —
# allocs_per_solve_steady is exactly 0 and allocs_per_eval stays
# bounded. Allocation counts are deterministic, so this gate cannot
# flake; the timing bar (2x warm vs the pre-rework baseline) is
# enforced by the full-mode run recorded in BENCH_kernel.json.
echo "==> kernel_bench smoke gate (target/BENCH_kernel.smoke.json)"
./target/release/kernel_bench --smoke target/BENCH_kernel.smoke.json
grep -q '"meets_target": true' target/BENCH_kernel.smoke.json
grep -q '"allocs_per_solve_steady": 0,' target/BENCH_kernel.smoke.json

# Failure-path gate: the fault-injection suite must also hold when the
# whole binary runs under an ambient probabilistic chaos plan (two
# fixed seeds so the streams differ but stay reproducible).
echo "==> QWM_FAULTS chaos plans (seeds 1, 2)"
QWM_FAULTS='seed=1;qwm.region=noconv:0.5' cargo test -q --test fault_injection
QWM_FAULTS='seed=2;qwm.region=singular:0.5;spice.adaptive=timeout:0.25' \
    cargo test -q --test fault_injection

# Observability gate, part 1: telemetry must never perturb results.
# With tracing and obs off, the CLI report is byte-identical to the
# committed golden.
echo "==> tracing-off golden identity (path4 CLI)"
./target/release/qwm testdata/path4.sp --slew 20 --threads 2 \
    > target/path4.cli.out 2>&1
diff -u testdata/golden/path4.cli.golden target/path4.cli.out

# Observability gate, part 2: QWM_OBS=json emits one well-formed JSON
# object per telemetry line, and `qwm obs-report` accepts the stream.
echo "==> QWM_OBS=json telemetry round-trip (path4 CLI)"
QWM_OBS=json ./target/release/qwm testdata/path4.sp --slew 20 --threads 2 \
    2>/dev/null | grep '^{' > target/path4.obs.jsonl
test -s target/path4.obs.jsonl
./target/release/qwm obs-report target/path4.obs.jsonl --check-only

# Serving gate: boot `qwm serve` on an ephemeral port, drive it with
# the load generator (seeded edit+run streams over concurrent
# connections, zero failures tolerated), compare against per-process
# cold invocations, and verify a clean drain. Emits BENCH_server.json
# with queue-wait vs solve-time percentiles, plus a traced-run
# metrics/trace dump rendered to a self-contained HTML report.
echo "==> server smoke (qwm serve + server_load)"
cargo build --release -p qwm-bench
rm -f target/serve_smoke.out
./target/release/qwm serve --addr 127.0.0.1:0 --max-inflight 8 \
    > target/serve_smoke.out 2>&1 &
SERVE_PID=$!
ADDR=""
for _ in $(seq 1 100); do
    ADDR=$(sed -n 's/^listening on //p' target/serve_smoke.out)
    [ -n "$ADDR" ] && break
    sleep 0.1
done
if [ -z "$ADDR" ]; then
    echo "server never reported its address" >&2
    kill "$SERVE_PID" 2>/dev/null || true
    exit 1
fi
./target/release/server_load --addr "$ADDR" --connections 8 --requests 25 \
    --cold ./target/release/qwm --obs-dump target/serve_obs.jsonl \
    --shutdown --out BENCH_server.json
wait "$SERVE_PID"
grep -q '"failures": 0,' BENCH_server.json
grep -q '"warm_breakdown"' BENCH_server.json
grep -q '^drained$' target/serve_smoke.out
./target/release/qwm obs-report target/serve_obs.jsonl \
    --out target/serve_obs.html --title "server smoke telemetry"
test -s target/serve_obs.html

# Capacity gate: a bounded ramp (tiny rps bounds, short rounds, its own
# ephemeral-port server) must converge on both stock workload decks,
# emit a BENCH_capacity_server.json that self-compares clean, and
# render a self-contained HTML capacity report. The real discovery run
# (stock deck bounds, minutes of wall clock) stays behind
# QWM_CAPACITY_FULL=1.
echo "==> capacity smoke (server_capacity ramp + compare + HTML)"
rm -f target/capacity_smoke.out
./target/release/qwm serve --addr 127.0.0.1:0 --max-inflight 8 \
    > target/capacity_smoke.out 2>&1 &
CAP_PID=$!
CAP_ADDR=""
for _ in $(seq 1 100); do
    CAP_ADDR=$(sed -n 's/^listening on //p' target/capacity_smoke.out)
    [ -n "$CAP_ADDR" ] && break
    sleep 0.1
done
if [ -z "$CAP_ADDR" ]; then
    echo "capacity server never reported its address" >&2
    kill "$CAP_PID" 2>/dev/null || true
    exit 1
fi
if [ "${QWM_CAPACITY_FULL:-0}" = "1" ]; then
    ./target/release/server_capacity --addr "$CAP_ADDR" \
        --workload testdata/workloads/heavy_run.deck \
        --workload testdata/workloads/mixed.deck \
        --shutdown --out BENCH_capacity_server.json
else
    ./target/release/server_capacity --addr "$CAP_ADDR" \
        --workload testdata/workloads/heavy_run.deck \
        --workload testdata/workloads/mixed.deck \
        --initial-rps 5 --increment-rps 5 --max-rps 20 \
        --round-ms 300 --sessions 2 --connections 2 \
        --shutdown --out BENCH_capacity_server.json
fi
wait "$CAP_PID"
grep -q '^drained$' target/capacity_smoke.out
grep -q '"schema": "qwm.capacity.v1"' BENCH_capacity_server.json
grep -q '"max_sustainable_rps"' BENCH_capacity_server.json
grep -q '"wait_p50_us"' BENCH_capacity_server.json
# The artifact must self-compare clean (the cross-PR gate's pass path;
# its fail path is pinned by the qwm-bench test suite), and the planned
# op log must be deterministic (the replay contract, end to end).
./target/release/server_capacity compare \
    BENCH_capacity_server.json BENCH_capacity_server.json
# Cross-PR capacity gate: the fresh smoke artifact must not regress
# more than 75% against the committed baseline (the smoke bounds are
# tiny and time-boxed, so the generous margin absorbs machine noise
# while still catching order-of-magnitude collapses).
./target/release/server_capacity compare \
    testdata/baseline/BENCH_capacity_server.json BENCH_capacity_server.json \
    --max-regression-pct 75
./target/release/server_capacity plan \
    --workload testdata/workloads/mixed.deck --rps 20 > target/capacity_plan.a
./target/release/server_capacity plan \
    --workload testdata/workloads/mixed.deck --rps 20 > target/capacity_plan.b
diff target/capacity_plan.a target/capacity_plan.b
./target/release/qwm capacity-report BENCH_capacity_server.json \
    --out target/capacity_report.html --title "capacity smoke"
test -s target/capacity_report.html

# Durability gate, part 1: the store-corruption fuzz suite (fixed seed
# baked into the test) — every mutated log recovers via torn-tail
# truncation or fails with a structured error, never a panic.
echo "==> store corruption fuzz (fixed seed)"
cargo test -q --test store_fuzz

# Durability gate, part 2: kill/restart smoke — SIGKILL a stored server
# mid-session, restart it, and require byte-identical reports, an
# incremental (not cold) first query, and zero re-characterizations.
echo "==> restart smoke (server_restart)"
./target/release/server_restart --qwm ./target/release/qwm \
    --out target/BENCH_restart.json
grep -q '"bitwise_identical": true' target/BENCH_restart.json
grep -q '"incremental_first_query": true' target/BENCH_restart.json

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> all checks passed"
