* 4-stage NAND/inverter path (see tests/pipeline.rs)
MN1a n1 a   m1 0    nmos W=1u   L=0.35u
MN1b m1 b   0  0    nmos W=1u   L=0.35u
MP1a n1 a   vdd vdd pmos W=1u   L=0.35u
MP1b n1 b   vdd vdd pmos W=1u   L=0.35u
MN2  n2 n1  0  0    nmos W=0.5u L=0.35u
MP2  n2 n1  vdd vdd pmos W=1u   L=0.35u
MN3a n3 n2  m3 0    nmos W=1u   L=0.35u
MN3b m3 c   0  0    nmos W=1u   L=0.35u
MP3a n3 n2  vdd vdd pmos W=1u   L=0.35u
MP3b n3 c   vdd vdd pmos W=1u   L=0.35u
MN4  n4 n3  0  0    nmos W=0.5u L=0.35u
MP4  n4 n3  vdd vdd pmos W=1u   L=0.35u
Cl   n4 0  12f
.input a b c
.output n4
.end
